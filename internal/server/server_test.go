package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

func createPolicy(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	var created map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/policies",
		map[string]string{"name": "mini", "text": corpus.Mini()}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d (%v)", resp.StatusCode, created)
	}
	return created
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]any
	resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("health = %d %v", resp.StatusCode, out)
	}
}

func TestCreateAndGetPolicy(t *testing.T) {
	ts := newTestServer(t)
	created := createPolicy(t, ts)
	if created["company"] != "Acme" {
		t.Errorf("company = %v", created["company"])
	}
	if created["edges"].(float64) == 0 {
		t.Error("no edges")
	}
	id := created["id"].(string)

	var got map[string]any
	resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+id, nil, &got)
	if resp.StatusCode != http.StatusOK || got["id"] != id {
		t.Fatalf("get = %d %v", resp.StatusCode, got)
	}

	var list []map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies", nil, &list)
	if resp.StatusCode != http.StatusOK || len(list) != 1 {
		t.Fatalf("list = %d %v", resp.StatusCode, list)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	var out map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/query",
		map[string]any{"question": "Does Acme share my email address with advertising partners?", "include_script": true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d %v", resp.StatusCode, out)
	}
	if out["verdict"] != "VALID" {
		t.Errorf("verdict = %v", out["verdict"])
	}
	if !strings.Contains(out["script"].(string), "check-sat") {
		t.Error("script missing")
	}
	// Without include_script the script is omitted.
	var out2 map[string]any
	doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/query",
		map[string]any{"question": "Does Acme sell my personal information?"}, &out2)
	if _, hasScript := out2["script"]; hasScript {
		t.Error("script should be omitted")
	}
	if out2["verdict"] != "INVALID" {
		t.Errorf("verdict 2 = %v", out2["verdict"])
	}
}

func TestEdgesAndVagueEndpoints(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	var edges []map[string]any
	resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/edges?limit=3", nil, &edges)
	if resp.StatusCode != http.StatusOK || len(edges) != 3 {
		t.Fatalf("edges = %d, %d entries", resp.StatusCode, len(edges))
	}
	if !strings.Contains(edges[0]["text"].(string), "->") {
		t.Errorf("edge text = %v", edges[0]["text"])
	}

	var vague []map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/vague", nil, &vague)
	if resp.StatusCode != http.StatusOK || len(vague) == 0 {
		t.Fatalf("vague = %d, %d entries", resp.StatusCode, len(vague))
	}
}

func TestUpdateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and sleep patterns automatically.", 1)
	var out map[string]any
	resp := doJSON(t, "PUT", ts.URL+"/v1/policies/"+id,
		map[string]string{"text": edited}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d %v", resp.StatusCode, out)
	}
	if out["segments_added"].(float64) != 1 || out["edges_added"].(float64) == 0 {
		t.Errorf("update accounting: %v", out)
	}
	policy := out["policy"].(map[string]any)
	if policy["versions"].(float64) != 2 {
		t.Errorf("versions = %v", policy["versions"])
	}
}

func TestSolveEndpoint(t *testing.T) {
	ts := newTestServer(t)
	script := `
(declare-fun p () Bool)
(assert p)
(assert (not p))
(check-sat)`
	var out []map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/solve", map[string]string{"script": script}, &out)
	if resp.StatusCode != http.StatusOK || len(out) != 1 {
		t.Fatalf("solve = %d %v", resp.StatusCode, out)
	}
	if out[0]["status"] != "unsat" {
		t.Errorf("status = %v", out[0]["status"])
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		method, path string
		body         any
		wantStatus   int
	}{
		{"GET", "/v1/policies/nope", nil, http.StatusNotFound},
		{"POST", "/v1/policies", map[string]string{}, http.StatusBadRequest},                          // missing text
		{"POST", "/v1/policies", nil, http.StatusBadRequest},                                          // empty body
		{"POST", "/v1/solve", map[string]string{"script": "(assert"}, http.StatusUnprocessableEntity}, // malformed SMT-LIB
		{"POST", "/v1/solve", map[string]string{}, http.StatusBadRequest},
		{"GET", "/v1/policies/nope/edges", nil, http.StatusNotFound},
		{"POST", "/v1/policies/nope/query", map[string]string{"question": "x"}, http.StatusNotFound},
		{"DELETE", "/v1/policies", nil, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		var out any
		resp := doJSON(t, c.method, ts.URL+c.path, c.body, &out)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s = %d, want %d (%v)", c.method, c.path, resp.StatusCode, c.wantStatus, out)
		}
	}
}

func TestUnknownJSONFieldRejected(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/policies",
		map[string]string{"text": corpus.Mini(), "surprise": "1"}, &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
}

func TestInvalidLimitParam(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	var out map[string]any
	resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/edges?limit=-1", nil, &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit accepted: %d", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	ts := newTestServer(t)
	huge := strings.Repeat("x", MaxBodyBytes+1)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/policies", strings.NewReader(`{"text":"`+huge+`"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(`{"question":"Does Acme collect my device identifiers?%s"}`, strings.Repeat(" ", i%3))
			resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/query", "application/json", strings.NewReader(q))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestVerifyBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	var out map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch",
		map[string]any{"questions": []string{
			"Does Acme share my email address with advertising partners?",
			"Does Acme sell my personal information?",
			"Does Acme share my email address with advertising partners?",
		}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify-batch = %d %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d entries", len(results))
	}
	first := results[0].(map[string]any)
	if first["verdict"] != "VALID" {
		t.Errorf("verdict[0] = %v", first["verdict"])
	}
	if first["question"] != "Does Acme share my email address with advertising partners?" {
		t.Errorf("question[0] = %v", first["question"])
	}
	if results[1].(map[string]any)["verdict"] != "INVALID" {
		t.Errorf("verdict[1] = %v", results[1].(map[string]any)["verdict"])
	}
	// The repeated query must agree with its first occurrence and the
	// shared SMT cache must report hits for it.
	if results[2].(map[string]any)["verdict"] != first["verdict"] {
		t.Errorf("repeated query diverged: %v", results[2])
	}
	cache := out["smt_cache"].(map[string]any)
	if cache["hits"].(float64) == 0 {
		t.Errorf("repeated query should hit the SMT cache: %v", cache)
	}

	// Error paths.
	for _, body := range []map[string]any{
		{"questions": []string{}},
		{"questions": []string{"ok", ""}},
	} {
		resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad batch %v = %d", body, resp.StatusCode)
		}
	}
	big := make([]string, MaxBatchQuestions+1)
	for i := range big {
		big[i] = "q"
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch",
		map[string]any{"questions": big}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d", resp.StatusCode)
	}
}

// TestConcurrentMixedAccess exercises the snapshot discipline under -race:
// reads, queries and batch verifications run concurrently with incremental
// updates and new uploads. Updates racing updates may 409; everything else
// must succeed.
func TestConcurrentMixedAccess(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and sleep patterns automatically.", 1)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	post := func(path string, body any, allowed ...int) {
		defer wg.Done()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			errs <- err
			return
		}
		req, err := http.NewRequest("POST", ts.URL+path, &buf)
		if err != nil {
			errs <- err
			return
		}
		if strings.HasPrefix(path, "/v1/policies/"+id) && body != nil {
			if _, isUpdate := body.(map[string]string); isUpdate {
				req.Method = "PUT"
			}
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errs <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		for _, code := range allowed {
			if resp.StatusCode == code {
				return
			}
		}
		errs <- fmt.Errorf("%s %s = %d", req.Method, path, resp.StatusCode)
	}
	get := func(path string) {
		defer wg.Done()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			errs <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}

	for i := 0; i < 6; i++ {
		wg.Add(5)
		go post("/v1/policies/"+id+"/query",
			map[string]any{"question": "Does Acme collect my device identifiers?"}, http.StatusOK)
		go post("/v1/policies/"+id+"/verify-batch",
			map[string]any{"questions": []string{
				"Does Acme share my email address with advertising partners?",
				"Does Acme sell my personal information?",
			}}, http.StatusOK)
		// Concurrent updates may lose the swap race and 409; that is the
		// documented contract, not a failure.
		go post("/v1/policies/"+id,
			map[string]string{"text": edited}, http.StatusOK, http.StatusConflict)
		go post("/v1/policies",
			map[string]any{"text": corpus.Mini()}, http.StatusCreated)
		go get("/v1/policies/" + id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNewRequiresPipeline(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("nil pipeline accepted")
	}
}

func TestExploreEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	var out map[string]any
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/explore",
		map[string]string{"question": "Does Acme share my usage data with service providers?"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore = %d %v", resp.StatusCode, out)
	}
	scenarios := out["scenarios"].([]any)
	if len(scenarios) < 2 {
		t.Fatalf("scenarios = %v", out)
	}
	if out["always_valid"] == true {
		t.Error("conditional query cannot be always-valid")
	}
	// Missing question.
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/explore", map[string]string{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing question = %d", resp.StatusCode)
	}
}

func TestReportAndDotEndpoints(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/policies/" + id + "/report?hierarchy=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "# Privacy Policy Audit") {
		t.Fatalf("report = %d\n%s", resp.StatusCode, body[:min(120, len(body))])
	}
	if !strings.Contains(string(body), "Data type hierarchy") {
		t.Error("hierarchy section missing with hierarchy=1")
	}

	resp, err = http.Get(ts.URL + "/v1/policies/" + id + "/dot?kind=data")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "digraph") {
		t.Fatalf("dot = %d\n%s", resp.StatusCode, body[:min(120, len(body))])
	}

	resp, err = http.Get(ts.URL + "/v1/policies/" + id + "/dot?kind=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus dot kind = %d", resp.StatusCode)
	}
}

func TestConcurrencyLimiter(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot.
	s.sem <- struct{}{}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server = %d, want 503", resp.StatusCode)
	}
	// Health and metrics are exempt: a saturated server must stay
	// observable.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("saturated server %s = %d, want 200 (limiter exemption)", path, resp.StatusCode)
		}
	}
	// Release and retry.
	<-s.sem
	resp, err = http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("freed server = %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint drives a full analyze + verify-batch cycle, then
// asserts the Prometheus exposition reflects it: nonzero solve-time
// histogram buckets, verdict counters, cache counters and HTTP counters.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch",
		map[string]any{"questions": []string{
			"Does Acme share my email address with advertising partners?",
			"Does Acme sell my personal information?",
		}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify-batch = %d", resp.StatusCode)
	}

	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	if metricsResp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", metricsResp.StatusCode)
	}
	if ct := metricsResp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// The solve histogram's +Inf bucket counts every fresh solve; after a
	// verify-batch it must be nonzero.
	infBucket := 0.0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `quagmire_smt_solve_seconds_bucket{le="+Inf"}`) {
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &infBucket); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
		}
	}
	if infBucket == 0 {
		t.Errorf("quagmire_smt_solve_seconds +Inf bucket is zero after verify-batch:\n%s", body)
	}
	for _, want := range []string{
		"# TYPE quagmire_smt_solve_seconds histogram",
		"quagmire_smt_solve_seconds_sum",
		"quagmire_smt_solve_seconds_count",
		`quagmire_query_verdicts_total{verdict="VALID"}`,
		"quagmire_smt_cache_hits_total",
		"quagmire_smt_cache_misses_total",
		"quagmire_extract_segments_total",
		"quagmire_pipeline_phase_seconds_bucket",
		"quagmire_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugEndpoints checks the expvar and pprof wiring.
func TestDebugEndpoints(t *testing.T) {
	ts := newTestServer(t)
	createPolicy(t, ts)

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Quagmire struct {
			Counters map[string]float64 `json:"counters"`
		} `json:"quagmire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if vars.Quagmire.Counters["quagmire_extract_segments_total"] == 0 {
		t.Errorf("expvar quagmire.counters missing extraction activity: %v", vars.Quagmire.Counters)
	}

	pprofResp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer pprofResp.Body.Close()
	if pprofResp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", pprofResp.StatusCode)
	}
}
