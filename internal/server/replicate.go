package server

// Replication endpoints and follower mode.
//
// A disk-backed primary exposes its store's replication surface over
// HTTP: GET /v1/replicate/snapshot streams an indexed v2 snapshot (the
// follower writes it straight into its data directory), and GET
// /v1/replicate/wal?from=SEQ streams every durable WAL record past the
// follower's applied watermark in the CRC-framed WAL wire format, then
// long-polls — the connection parks on the store's sequence watch and
// flushes new records as they commit, so a caught-up follower sees
// sub-second lag without polling. A follower that asks for records below
// the primary's compaction horizon gets 410 Gone and must re-bootstrap
// from a fresh snapshot.
//
// A server constructed with Options.Replica serves the full read surface
// off the replicated store but refuses writes with 403 plus an
// X-Quagmire-Primary pointer, and reports replication status in /healthz.
// The replica client (internal/replica) feeds applied records back
// through ApplyReplicated so live engine cells track replicated state.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/privacy-quagmire/quagmire/internal/store"
)

// headerSeq carries the primary's sequence watermark on replication
// responses; headerPrimary points a rejected writer at the primary.
const (
	headerSeq     = "X-Quagmire-Seq"
	headerPrimary = "X-Quagmire-Primary"
)

// walStreamBatch bounds how many records one ReplayFrom pass collects
// before the store lock is released and the batch is flushed to the
// network — a slow follower connection must never stall primary writes
// for the duration of a full WAL read.
const walStreamBatch = 256

// ReplicaOptions marks the server as a read-only follower.
type ReplicaOptions struct {
	// Primary is the primary's base URL, returned to rejected writers in
	// the X-Quagmire-Primary header.
	Primary string
	// Status, when non-nil, is rendered into /healthz as the "replica"
	// section (the replica client's lag/connection report).
	Status func() any
}

// handleReplicateSnapshot streams a bootstrap snapshot. The watermark
// header is written inside the store's read lock, before the first body
// byte, so header and stream always agree.
func (s *Server) handleReplicateSnapshot(rep store.Replicator) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_, err := rep.SnapshotTo(w, func(seq uint64) {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set(headerSeq, strconv.FormatUint(seq, 10))
		})
		if err != nil {
			// Headers may be gone already; if not, surface the error properly.
			s.pipeline.Obs().Counter("quagmire_replicate_snapshot_errors_total").Inc()
			if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
				writeError(w, http.StatusInternalServerError, "snapshot stream failed: %v", err)
				return
			}
			if s.logger != nil {
				s.logger.Printf("replicate: snapshot stream aborted: %v", err)
			}
			return
		}
		s.pipeline.Obs().Counter("quagmire_replicate_snapshots_total").Inc()
	}
}

// handleReplicateWAL streams WAL records with seq > from, then long-polls
// for more until the client disconnects or the store closes. Records are
// collected in bounded batches under the store lock and framed onto the
// wire outside it.
func (s *Server) handleReplicateWAL(rep store.Replicator) http.HandlerFunc {
	errBatchFull := errors.New("batch full")
	return func(w http.ResponseWriter, r *http.Request) {
		from := uint64(0)
		if raw := r.URL.Query().Get("from"); raw != "" {
			n, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "invalid from %q (want a sequence number)", raw)
				return
			}
			from = n
		}
		reg := s.pipeline.Obs()
		reg.Counter("quagmire_replicate_wal_streams_total").Inc()
		rc := http.NewResponseController(w)
		started := false
		start := func() {
			if !started {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set(headerSeq, strconv.FormatUint(rep.Seq(), 10))
				w.WriteHeader(http.StatusOK)
				started = true
			}
		}
		batch := make([]store.Record, 0, walStreamBatch)
		for {
			batch = batch[:0]
			err := rep.ReplayFrom(from, func(rec store.Record) error {
				batch = append(batch, rec)
				if len(batch) >= walStreamBatch {
					return errBatchFull
				}
				return nil
			})
			full := errors.Is(err, errBatchFull)
			if err != nil && !full {
				switch {
				case errors.Is(err, store.ErrCompacted):
					if started {
						return // mid-stream compaction: end; the reconnect sees the 410
					}
					w.Header().Set(headerSeq, strconv.FormatUint(rep.Seq(), 10))
					writeError(w, http.StatusGone,
						"records after seq %d were compacted away; re-bootstrap from /v1/replicate/snapshot", from)
				case errors.Is(err, store.ErrClosed):
					if !started {
						writeError(w, http.StatusServiceUnavailable, "store closed")
					}
				default:
					reg.Counter("quagmire_replicate_wal_errors_total").Inc()
					if started {
						if s.logger != nil {
							s.logger.Printf("replicate: wal stream aborted: %v", err)
						}
						return
					}
					writeError(w, http.StatusInternalServerError, "wal replay failed: %v", err)
				}
				return
			}
			start()
			for _, rec := range batch {
				if werr := store.WriteRecord(w, rec); werr != nil {
					return // client gone; it will reconnect from its watermark
				}
				from = rec.Seq
			}
			if len(batch) > 0 {
				reg.Counter("quagmire_replicate_wal_records_total").Add(uint64(len(batch)))
			}
			// Flush even an empty first pass: a caught-up follower must see
			// the response headers immediately (it reports the open stream as
			// its "connected" state), not when the next record happens to
			// commit.
			_ = rc.Flush()
			if full {
				continue // more records already durable; skip the wait
			}
			if _, werr := rep.WaitSeq(r.Context(), from); werr != nil {
				return // client disconnected or store closed
			}
		}
	}
}

// writeGuard rejects mutation endpoints on a follower with 403 and the
// primary pointer. On a primary it is the identity.
func (s *Server) writeGuard(next http.HandlerFunc) http.HandlerFunc {
	if s.replica == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(headerPrimary, s.replica.Primary)
		writeError(w, http.StatusForbidden,
			"read-only replica: send writes to the primary at %s", s.replica.Primary)
	}
}

// dropCellAccounting unwinds the gauges a replaced cell contributed to:
// a quarantined cell leaves the quarantine gauge, an unbuilt recovered
// cell leaves the warm-pending gauge. Called when replication replaces or
// discards live cells outside the create/update paths.
func (s *Server) dropCellAccounting(c *engineCell) {
	c.mu.Lock()
	quarantined := c.built && c.err != nil && !c.transient
	pending := c.recovered && !c.built
	c.mu.Unlock()
	reg := s.pipeline.Obs()
	if quarantined {
		reg.Gauge(metricQuarantined).Add(-1)
	}
	if pending {
		reg.Gauge(metricWarmPending).Add(-1)
	}
}

// ApplyReplicated installs the live engine cell for one replicated record:
// the policy's latest version becomes a lazy cell over the already-durable
// store state, so the first read decodes the replicated payload through
// the exact state machine local recovery uses. The replica client calls
// this after every ApplyRecord.
func (s *Server) ApplyReplicated(rec store.Record) {
	cell := newStatsCell(rec.ID, rec.Version.N, rec.Version.Stats)
	s.mu.Lock()
	old := s.live[rec.ID]
	s.live[rec.ID] = cell
	s.mu.Unlock()
	if old != nil {
		s.dropCellAccounting(old)
	}
}

// ReloadReplicated rebuilds the whole live map from the store — the
// follower calls it after a snapshot re-bootstrap replaced store state
// wholesale (the incremental ApplyReplicated path covers everything
// else). Engine cells rebuild lazily on first read, same as recovery.
func (s *Server) ReloadReplicated() error {
	pols, err := s.store.List()
	if err != nil {
		return fmt.Errorf("server: reload replicated: %w", err)
	}
	fresh := make(map[string]*engineCell, len(pols))
	for _, p := range pols {
		metas, err := s.store.Versions(p.ID)
		if err != nil || len(metas) == 0 {
			return fmt.Errorf("server: reload replicated %s: %w", p.ID, err)
		}
		fresh[p.ID] = newStatsCell(p.ID, p.Versions, metas[len(metas)-1].Stats)
	}
	s.mu.Lock()
	old := s.live
	s.live = fresh
	s.mu.Unlock()
	for _, c := range old {
		s.dropCellAccounting(c)
	}
	if s.logger != nil {
		s.logger.Printf("server: reloaded %d policies from re-bootstrapped store", len(fresh))
	}
	return nil
}
