package server

// Differential restart tests: a disk-backed server is killed (simulated by
// abandoning it without Close, so no snapshot is written) and a second
// server opens the same data directory. Every externally observable
// surface — policy list, per-version history, compliance verdicts — must
// be identical before and after.

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// syncBuffer is a logger sink safe to read while the server's background
// goroutines (the engine warmer) are still logging.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// diskServer opens dir with a fresh pipeline + disk store and serves it.
// The store is intentionally NOT closed on cleanup — abandoning it models
// a SIGKILL, leaving recovery entirely to the WAL.
func diskServer(t *testing.T, dir string, logger *log.Logger) *httptest.Server {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDisk(dir, store.Options{Logger: logger, Obs: p.Obs()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p, Store: st, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// observe captures every restart-sensitive surface of the API as
// rendered JSON: the policy list, each policy's version history, and
// batch-query verdicts against each policy.
func observe(t *testing.T, ts *httptest.Server, ids []string) string {
	t.Helper()
	var buf bytes.Buffer
	capture := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		var v any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		out, _ := json.Marshal(v)
		buf.WriteString(path + " " + string(out) + "\n")
	}
	capture("/v1/policies")
	for _, id := range ids {
		capture("/v1/policies/" + id)
		capture("/v1/policies/" + id + "/versions")
	}
	for _, id := range ids {
		var out struct {
			Results []struct {
				Question string `json:"question"`
				Verdict  string `json:"verdict"`
			} `json:"results"`
		}
		resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch",
			map[string]any{"questions": []string{
				"Does Acme sell my personal information?",
				"Does Acme share my email address with advertising partners?",
				"Does Acme collect my device identifiers?",
			}}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify-batch %s = %d", id, resp.StatusCode)
		}
		res, _ := json.Marshal(out.Results)
		buf.WriteString(id + " verdicts " + string(res) + "\n")
	}
	return buf.String()
}

func TestServerRestartRecoversIdenticalState(t *testing.T) {
	dir := t.TempDir()
	ts1 := diskServer(t, dir, nil)

	// Build state worth recovering: two same-company policies, one of them
	// updated (so the store holds three versions across two policies).
	a := createPolicy(t, ts1)["id"].(string)
	b := createPolicy(t, ts1)["id"].(string)
	updateMini(t, ts1, b)
	ids := []string{a, b}

	before := observe(t, ts1, ids)
	ts1.Close() // the store is abandoned un-Closed: no snapshot, WAL only

	ts2 := diskServer(t, dir, nil)
	after := observe(t, ts2, ids)
	if before != after {
		t.Fatalf("state diverged across restart:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// The recovered server is not read-only: updates continue the version
	// sequence and fresh creates continue the ID sequence.
	out := updateMini(t, ts2, a)
	if v := out["policy"].(map[string]any)["versions"].(float64); v != 2 {
		t.Errorf("post-recovery update landed at version %v, want 2", v)
	}
	c := createPolicy(t, ts2)["id"].(string)
	if c == a || c == b {
		t.Errorf("post-recovery create reused ID %q", c)
	}
}

func TestServerRestartSurvivesCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	ts1 := diskServer(t, dir, nil)
	id := createPolicy(t, ts1)["id"].(string)
	before := observe(t, ts1, []string{id})
	ts1.Close()

	// A torn final write: garbage bytes after the last intact record.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x2a\x00\x00\x00torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logBuf syncBuffer
	ts2 := diskServer(t, dir, log.New(&logBuf, "", 0))
	if !strings.Contains(logBuf.String(), "corrupt wal record") {
		t.Errorf("no corruption warning logged; log:\n%s", logBuf.String())
	}
	after := observe(t, ts2, []string{id})
	if before != after {
		t.Fatalf("intact prefix not recovered:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}
