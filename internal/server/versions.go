package server

// Version-history endpoints. These read the store directly — version
// metadata and payloads are immutable once written, so no coordination
// with the live map is needed: a version that exists never changes.

import (
	"errors"
	"net/http"
	"strconv"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// storeError maps store failures onto the JSON error envelope.
func storeError(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "store read failed: %v", err)
}

// handleVersions serves GET /v1/policies/{id}/versions: the policy's full
// version-metadata history in order — creation times, graph shape and
// per-version diff stats, without the payloads.
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	metas, err := s.store.Versions(r.PathValue("id"))
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, metas)
}

// handleVersion serves GET /v1/policies/{id}/versions/{n}: one stored
// version's metadata (1-based).
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, "invalid version %q", r.PathValue("n"))
		return
	}
	v, err := s.store.Version(r.PathValue("id"), n)
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v.VersionMeta)
}

// diffResponse is the GET /v1/policies/{id}/diff payload: the semantic
// difference between two stored versions at practice granularity.
type diffResponse struct {
	From int `json:"from"`
	To   int `json:"to"`
	extract.VersionReport
}

// handleDiff serves GET /v1/policies/{id}/diff?from=N&to=M: both versions'
// extractions are decoded from the store and compared practice-by-practice
// (added, removed, permission flips, condition changes) — the cross-version
// contradictions a diff of raw text cannot see.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	parse := func(key string) (int, bool) {
		raw := r.URL.Query().Get(key)
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid %s version %q", key, raw)
			return 0, false
		}
		return n, true
	}
	from, ok := parse("from")
	if !ok {
		return
	}
	to, ok := parse("to")
	if !ok {
		return
	}
	pFrom, err := s.store.LoadPayload(id, from)
	if err != nil {
		storeError(w, err)
		return
	}
	pTo, err := s.store.LoadPayload(id, to)
	if err != nil {
		storeError(w, err)
		return
	}
	exFrom, err := core.DecodeExtraction(pFrom)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "decode version %d: %v", from, err)
		return
	}
	exTo, err := core.DecodeExtraction(pTo)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "decode version %d: %v", to, err)
		return
	}
	writeJSON(w, http.StatusOK, diffResponse{
		From:          from,
		To:            to,
		VersionReport: extract.CompareVersions(exFrom, exTo),
	})
}
