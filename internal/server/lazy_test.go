package server

// Lazy-recovery tests: corruption quarantine, lazy/eager differential
// equivalence, warmer build-once semantics, and the pinned-version engine
// cache. Stores are seeded and then abandoned or reopened the same way the
// restart tests do, so recovery always runs against real disk state.

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/scenario"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// diskServerRec is diskServer with recovery options and access to the
// *Server (for warmDone) and pipeline (for metrics). The store is
// abandoned un-Closed, modeling a SIGKILL.
func diskServerRec(t *testing.T, dir string, logger *log.Logger, rec RecoveryOptions, popts core.Options) (*httptest.Server, *Server, *core.Pipeline) {
	t.Helper()
	p, err := core.New(popts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDisk(dir, store.Options{Logger: logger, Obs: p.Obs()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p, Store: st, Logger: logger, Recovery: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s, p
}

// seedStoreDirect writes n healthy copies of the analyzed Mini corpus
// straight into dir's store (plus, when corrupt is true, one policy whose
// payload will never decode — simulating codec-version skew, the disk
// corruption the WAL's CRCs cannot catch). Returns the healthy IDs and the
// corrupt one ("" when none). The store is closed cleanly so the content
// lands in a snapshot.
func seedStoreDirect(t testing.TB, dir string, n int, corrupt bool) (ids []string, brokenID string) {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	payload, err := core.EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDisk(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pol, err := st.Create(fmt.Sprintf("mini-%d", i), store.Version{
			VersionMeta: store.VersionMeta{Company: a.Extraction.Company, Stats: versionStats(a)},
			Payload:     payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pol.ID)
	}
	if corrupt {
		pol, err := st.Create("broken", store.Version{
			VersionMeta: store.VersionMeta{Company: "Broken"},
			Payload:     []byte("not an analysis payload"),
		})
		if err != nil {
			t.Fatal(err)
		}
		brokenID = pol.ID
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return ids, brokenID
}

// TestRecoveryQuarantinesCorruptPayload is the regression test for the
// boot-abort bug: one undecodable stored payload used to fail New for the
// whole store. Now, in both recovery modes, every healthy policy serves
// and the corrupt one is quarantined — 503 on analysis endpoints, marked
// in the list, /healthz degraded, gauge set — until a PUT repairs it.
func TestRecoveryQuarantinesCorruptPayload(t *testing.T) {
	for _, mode := range []struct {
		name string
		rec  RecoveryOptions
	}{
		{"lazy", RecoveryOptions{}},
		{"eager", RecoveryOptions{Eager: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			ids, broken := seedStoreDirect(t, dir, 2, true)
			ts, srv, p := diskServerRec(t, dir, nil, mode.rec, core.Options{})
			// Let the warmer touch every cell so even the lazy server has
			// discovered the corruption before we assert on it.
			if srv.warmDone != nil {
				<-srv.warmDone
			}

			// Healthy policies serve analysis traffic.
			for _, id := range ids {
				var out map[string]any
				resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/query",
					map[string]string{"question": "Does Acme collect my device identifiers?"}, &out)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("healthy policy %s query = %d (%v)", id, resp.StatusCode, out)
				}
			}

			// The corrupt one answers 503 with the quarantine reason.
			var qerr map[string]any
			resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+broken+"/query",
				map[string]string{"question": "Does Acme collect my device identifiers?"}, &qerr)
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("quarantined query = %d, want 503 (%v)", resp.StatusCode, qerr)
			}
			if msg, _ := qerr["error"].(string); !strings.Contains(msg, "quarantined") {
				t.Errorf("503 body does not name quarantine: %v", qerr)
			}

			// Metadata still renders, with the marker, on get and list.
			var got map[string]any
			if resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+broken, nil, &got); resp.StatusCode != http.StatusOK {
				t.Fatalf("quarantined get = %d", resp.StatusCode)
			}
			if got["quarantined"] != true {
				t.Errorf("get %s: quarantined marker missing: %v", broken, got)
			}
			var list []map[string]any
			doJSON(t, "GET", ts.URL+"/v1/policies", nil, &list)
			marked := 0
			for _, p := range list {
				if p["quarantined"] == true {
					marked++
				}
			}
			if len(list) != 3 || marked != 1 {
				t.Errorf("list: %d entries, %d marked quarantined (want 3/1)", len(list), marked)
			}

			// Health: degraded but still 200 — healthy policies serve, and
			// draining the instance would not fix a corrupt stored payload.
			var health map[string]any
			resp = doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
			if resp.StatusCode != http.StatusOK || health["status"] != "degraded" {
				t.Errorf("healthz = %d %v, want 200 degraded", resp.StatusCode, health)
			}
			if health["quarantined"] != float64(1) {
				t.Errorf("healthz quarantined = %v, want 1", health["quarantined"])
			}
			if g := p.Obs().Gauge(metricQuarantined).Value(); g != 1 {
				t.Errorf("%s gauge = %v, want 1", metricQuarantined, g)
			}

			// PUT re-analyzes from fresh text and lifts the quarantine.
			var upd map[string]any
			resp = doJSON(t, "PUT", ts.URL+"/v1/policies/"+broken,
				map[string]string{"text": corpus.Mini()}, &upd)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("repair update = %d (%v)", resp.StatusCode, upd)
			}
			resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+broken+"/query",
				map[string]string{"question": "Does Acme collect my device identifiers?"}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("repaired policy query = %d, want 200", resp.StatusCode)
			}
			if g := p.Obs().Gauge(metricQuarantined).Value(); g != 0 {
				t.Errorf("post-repair gauge = %v, want 0", g)
			}
			doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
			if health["status"] != "ok" {
				t.Errorf("post-repair healthz = %v, want ok", health["status"])
			}
		})
	}
}

// TestRecoveryLazyEagerIdentical is the differential test: after a
// SIGKILL-style abandon, an eager server and a lazy server over the same
// data directory must expose byte-identical state — policy list, version
// histories, and query verdicts.
func TestRecoveryLazyEagerIdentical(t *testing.T) {
	dir := t.TempDir()
	ts0 := diskServer(t, dir, nil)
	a := createPolicy(t, ts0)["id"].(string)
	b := createPolicy(t, ts0)["id"].(string)
	updateMini(t, ts0, b)
	ids := []string{a, b}
	before := observe(t, ts0, ids)
	ts0.Close() // abandoned un-Closed: recovery replays the WAL

	tsEager, _, _ := diskServerRec(t, dir, nil, RecoveryOptions{Eager: true}, core.Options{})
	eager := observe(t, tsEager, ids)
	tsEager.Close()

	tsLazy, _, _ := diskServerRec(t, dir, nil, RecoveryOptions{}, core.Options{})
	lazy := observe(t, tsLazy, ids)

	if before != eager {
		t.Errorf("eager recovery diverged from pre-restart state:\nbefore:\n%s\neager:\n%s", before, eager)
	}
	if eager != lazy {
		t.Errorf("lazy recovery diverged from eager:\neager:\n%s\nlazy:\n%s", eager, lazy)
	}
}

// TestWarmerRaceBuildsOnce races queries against the background warmer
// (run under -race) and asserts the singleflight invariant: no matter who
// gets to a cell first, each policy's engine — and its shared ground
// core — is built exactly once.
func TestWarmerRaceBuildsOnce(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	ids, _ := seedStoreDirect(t, dir, n, false)

	ts, srv, p := diskServerRec(t, dir, nil, RecoveryOptions{WarmWorkers: 2},
		core.Options{SharedSolverCore: true})
	var wg sync.WaitGroup
	for _, id := range ids {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/query", "application/json",
					strings.NewReader(`{"question":"Does Acme collect my device identifiers?"}`))
				if err == nil {
					resp.Body.Close()
				}
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("query %s during warm-up failed: %v %v", id, err, resp)
				}
			}(id)
		}
	}
	wg.Wait()
	<-srv.warmDone

	if got := p.Obs().Counter("quagmire_ground_core_builds_total").Value(); got != n {
		t.Errorf("ground core builds = %d, want exactly %d (one per policy)", got, n)
	}
	builds := p.Obs().Counter(metricEngineBuilds, "source", "query").Value() +
		p.Obs().Counter(metricEngineBuilds, "source", "warmer").Value()
	if builds != n {
		t.Errorf("engine builds = %d, want exactly %d", builds, n)
	}
	if pending := p.Obs().Gauge(metricWarmPending).Value(); pending != 0 {
		t.Errorf("warm-pending gauge = %v after warmDone, want 0", pending)
	}
}

// TestCheckPinnedVersionUsesEngineCache is the regression test for the
// rebuild-per-request bug: a /check pinned to a historical version used to
// decode the payload and rebuild the engine on every request. The second
// identical request must now be a cache hit.
func TestCheckPinnedVersionUsesEngineCache(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	id := createPolicy(t, ts)["id"].(string)
	updateMini(t, ts, id) // two versions: pinning @1 is now historical

	suite := `suite "pin" {
  scenario "collection disclosed" {
    ask "Does Acme collect my device identifiers?"
    expect VALID
  }
}`
	for i := 0; i < 2; i++ {
		var out struct {
			Report scenario.Report `json:"report"`
		}
		resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
			map[string]any{"suite": suite, "version": 1}, &out)
		if resp.StatusCode != http.StatusOK || !out.Report.OK {
			t.Fatalf("pinned check #%d = %d %+v", i+1, resp.StatusCode, out.Report)
		}
	}
	misses := p.Obs().Counter(metricVersionMisses).Value()
	hits := p.Obs().Counter(metricVersionHits).Value()
	if misses != 1 || hits != 1 {
		t.Errorf("version cache misses=%d hits=%d, want 1/1 (one decode, one reuse)", misses, hits)
	}
}
