package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// updateMini PUTs an edited Mini policy (one added statement) and returns
// the update response.
func updateMini(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and browsing history automatically.", 1)
	var out map[string]any
	resp := doJSON(t, "PUT", ts.URL+"/v1/policies/"+id,
		map[string]string{"text": edited}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d (%v)", resp.StatusCode, out)
	}
	return out
}

func TestVersionHistoryEndpoints(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	updateMini(t, ts, id)

	var metas []map[string]any
	resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/versions", nil, &metas)
	if resp.StatusCode != http.StatusOK || len(metas) != 2 {
		t.Fatalf("versions = %d, %d entries", resp.StatusCode, len(metas))
	}
	if metas[0]["n"].(float64) != 1 || metas[1]["n"].(float64) != 2 {
		t.Errorf("version numbers: %v %v", metas[0]["n"], metas[1]["n"])
	}
	// Version 1 has no diff (nothing preceded it); version 2 recorded the
	// incremental change.
	d1 := metas[0]["diff"].(map[string]any)
	d2 := metas[1]["diff"].(map[string]any)
	if d1["segments_added"].(float64) != 0 {
		t.Errorf("v1 diff = %v", d1)
	}
	if d2["segments_added"].(float64) != 1 || d2["edges_added"].(float64) == 0 {
		t.Errorf("v2 diff = %v", d2)
	}
	for _, m := range metas {
		if m["stats"].(map[string]any)["edges"].(float64) == 0 {
			t.Errorf("version %v has empty stats", m["n"])
		}
		if m["bytes"].(float64) == 0 {
			t.Errorf("version %v has zero payload size", m["n"])
		}
	}

	var one map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/versions/2", nil, &one)
	if resp.StatusCode != http.StatusOK || one["n"].(float64) != 2 {
		t.Fatalf("version 2 = %d %v", resp.StatusCode, one)
	}
}

func TestVersionEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	for _, c := range []struct {
		path string
		want int
	}{
		{"/v1/policies/nope/versions", http.StatusNotFound},
		{"/v1/policies/" + id + "/versions/9", http.StatusNotFound},
		{"/v1/policies/" + id + "/versions/zero", http.StatusBadRequest},
		{"/v1/policies/" + id + "/diff?from=1&to=9", http.StatusNotFound},
		{"/v1/policies/" + id + "/diff?from=x&to=1", http.StatusBadRequest},
		{"/v1/policies/" + id + "/diff?to=1", http.StatusBadRequest},
	} {
		var out map[string]any
		resp := doJSON(t, "GET", ts.URL+c.path, nil, &out)
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d (%v)", c.path, resp.StatusCode, c.want, out)
		}
	}
}

func TestDiffEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)
	updateMini(t, ts, id)

	var out struct {
		From    int `json:"from"`
		To      int `json:"to"`
		Changes []struct {
			DataType string `json:"data_type"`
			Kind     string `json:"kind"`
		} `json:"changes"`
	}
	resp := doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/diff?from=1&to=2", nil, &out)
	if resp.StatusCode != http.StatusOK || out.From != 1 || out.To != 2 {
		t.Fatalf("diff = %d %+v", resp.StatusCode, out)
	}
	found := false
	for _, c := range out.Changes {
		if c.Kind == "added" && c.DataType == "browsing history" {
			found = true
		}
	}
	if !found {
		t.Errorf("added practice not reported: %+v", out.Changes)
	}
	// The reverse diff sees the same practice as removed.
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/diff?from=2&to=1", nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reverse diff = %d", resp.StatusCode)
	}
	found = false
	for _, c := range out.Changes {
		if c.Kind == "removed" && c.DataType == "browsing history" {
			found = true
		}
	}
	if !found {
		t.Errorf("removed practice not reported in reverse diff: %+v", out.Changes)
	}
}

// TestSameCompanyPoliciesStayDistinct is the server-level regression for
// the old company-keyed persistence: two uploads extracting the same
// company name must remain two independent policies with independent
// histories.
func TestSameCompanyPoliciesStayDistinct(t *testing.T) {
	ts := newTestServer(t)
	a := createPolicy(t, ts)["id"].(string)
	b := createPolicy(t, ts)["id"].(string)
	if a == b {
		t.Fatalf("both uploads got ID %q", a)
	}
	updateMini(t, ts, b)

	var list []map[string]any
	doJSON(t, "GET", ts.URL+"/v1/policies", nil, &list)
	if len(list) != 2 {
		t.Fatalf("list has %d policies", len(list))
	}
	byID := map[string]float64{}
	for _, p := range list {
		byID[p["id"].(string)] = p["versions"].(float64)
	}
	if byID[a] != 1 || byID[b] != 2 {
		t.Errorf("versions: %v, want %s=1 %s=2", byID, a, b)
	}
}

// unhealthyStore simulates a store whose disk stopped accepting writes.
type unhealthyStore struct {
	store.PolicyStore
}

func (u unhealthyStore) Health() store.Health {
	h := u.PolicyStore.Health()
	h.Writable = false
	h.Detail = "probe failed: disk full"
	return h
}

func TestHealthDegradedStoreReturns503(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Pipeline: p,
		Store:    unhealthyStore{store.NewMem(store.Options{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out map[string]any
	resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &out)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if out["status"] != "degraded" {
		t.Errorf("status field = %v", out["status"])
	}
	st := out["store"].(map[string]any)
	if st["backend"] != "memory" || st["writable"] != false || st["detail"] == "" {
		t.Errorf("store health = %v", st)
	}
}
