package server

import (
	"errors"
	"fmt"
	"net/http"

	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/scenario"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// checkRequest is the POST /v1/policies/{id}/check body: a scenario suite
// in the compliance-as-code DSL, executed against the policy in the URL.
type checkRequest struct {
	// Suite is the .qq suite source. Its `policy` declaration, if any, is
	// ignored — the URL names the policy under check.
	Suite string `json:"suite"`
	// Version selects a stored version (0 = the live latest).
	Version int `json:"version,omitempty"`
	// Format selects the response rendering: "json" (default) or "junit".
	Format string `json:"format,omitempty"`
}

// checkResponse wraps the scenario report with the policy coordinates it
// ran against.
type checkResponse struct {
	PolicyID string          `json:"policy_id"`
	Version  int             `json:"version"`
	Report   scenario.Report `json:"report"`
}

// handleCheck executes a compliance-as-code scenario suite against a
// stored policy. The response always carries HTTP 200 with the full
// report — a failing scenario is a result, not a transport error; CI
// gating on the verdicts is the CLI's job.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req checkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Suite == "" {
		writeError(w, http.StatusBadRequest, "suite is required")
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "junit" {
		writeError(w, http.StatusBadRequest, "unknown format %q (json|junit)", req.Format)
		return
	}
	parsed, err := scenario.Parse("request.qq", req.Suite)
	if err != nil {
		writeError(w, http.StatusBadRequest, "suite parse: %v", err)
		return
	}
	cs, err := scenario.Compile(parsed)
	if err != nil {
		writeError(w, http.StatusBadRequest, "suite compile: %v", err)
		return
	}

	eng, version, ok := s.checkEngine(w, e, req.Version)
	if !ok {
		return
	}
	res, err := scenario.Execute(r.Context(), eng, cs, scenario.ExecOptions{
		Obs:    s.pipeline.Obs(),
		Policy: fmt.Sprintf("store:%s@%d", e.meta.ID, version),
	})
	if err != nil {
		s.writeComputeError(w, r, "scenario execution failed", err)
		return
	}
	results := []*scenario.SuiteResult{res}
	if req.Format == "junit" {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := scenario.WriteJUnit(w, results); err != nil && s.logger != nil {
			s.logger.Printf("server: junit render: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{
		PolicyID: e.meta.ID,
		Version:  version,
		Report:   scenario.NewReport(results),
	})
}

// checkEngine resolves the engine a check runs on: the live analysis for
// the latest version, or — for a pinned historical version — the bounded
// version-engine cache, so repeated pinned checks pay one decode per
// (policy, version) instead of one per request.
func (s *Server) checkEngine(w http.ResponseWriter, e policySnapshot, version int) (*query.Engine, int, bool) {
	if version == 0 || version == e.version {
		return e.analysis.Engine, e.version, true
	}
	a, err := s.versions.analysis(s, e.meta.ID, version)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, http.StatusNotFound, "policy %q version %d: %v", e.meta.ID, version, err)
		} else {
			writeError(w, http.StatusInternalServerError, "decode version %d: %v", version, err)
		}
		return nil, 0, false
	}
	return a.Engine, version, true
}
