package server

// Lazy engine cells, the background warmer, and corruption quarantine.
//
// Recovery used to decode every stored policy and rebuild its query
// engine inside New — minutes of downtime at corpus scale, and one
// undecodable payload refused boot entirely. Recovery now indexes the
// store into engineCells (version number + stored stats, no payload
// touched), so boot-to-ready is independent of policy count. A cell
// builds its *core.Analysis exactly once, on first demand: the first
// reader pays the decode (concurrent first readers wait on the same
// build, singleflight-style) and every later reader gets the cached
// engine. A bounded warmer pool walks the cells in ID order after boot so
// steady-state traffic rarely sees a cold cell.
//
// A payload that fails to decode no longer aborts anything: the cell is
// quarantined — the error is cached, the policy serves 503 with the
// reason, the list marks it, /healthz reports degraded, and the
// quagmire_policies_quarantined gauge counts it — while every healthy
// policy serves normally. Quarantine clears when a PUT re-analyzes the
// policy from fresh text (see handleUpdatePolicy's repair path).
//
// The same cell type backs the bounded version-engine cache that serves
// /check requests pinned to historical versions, so a pinned suite run
// pays one decode per (policy, version), not one per request.

import (
	"fmt"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// Metric names of the recovery/quarantine surface.
const (
	metricQuarantined   = "quagmire_policies_quarantined"
	metricColdStart     = "quagmire_engine_cold_start_seconds"
	metricWarmPending   = "quagmire_recovery_warm_pending"
	metricEngineBuilds  = "quagmire_engine_builds_total"
	metricVersionHits   = "quagmire_version_engine_cache_hits_total"
	metricVersionMisses = "quagmire_version_engine_cache_misses_total"
)

// RecoveryOptions configures how stored policies come back at startup.
type RecoveryOptions struct {
	// Eager decodes every policy and builds its engine inside New (the
	// pre-lazy behavior, minus the boot abort: corrupt payloads quarantine
	// in both modes). Default is lazy cells plus the background warmer.
	Eager bool
	// WarmWorkers sizes the background warmer pool that populates lazy
	// cells after boot; 0 selects DefaultWarmWorkers, negative disables
	// background warming (cells build strictly on first query).
	WarmWorkers int
}

// DefaultWarmWorkers is the warmer pool size when unset.
const DefaultWarmWorkers = 2

func (r RecoveryOptions) warmWorkers() int {
	switch {
	case r.WarmWorkers == 0:
		return DefaultWarmWorkers
	case r.WarmWorkers < 0:
		return 0
	default:
		return r.WarmWorkers
	}
}

// engineCell is one policy-version's engine slot. The stored version
// number and its metadata stats are fixed at install; the analysis is
// either supplied ready (create/update install the one they just built)
// or built once on first demand from the store's payload. Cells are
// immutable from the outside — an update installs a new cell, never
// mutates one — so a snapshot taken from a cell stays consistent without
// holding any lock.
type engineCell struct {
	id      string
	version int
	// stats mirrors the stored VersionMeta.Stats so list/get can render a
	// policy without forcing a build (and can still render a quarantined
	// one, whose payload will never decode).
	stats store.VersionStats
	// recovered marks cells created by recovery indexing; the warm-pending
	// gauge tracks only those.
	recovered bool
	// transient marks version-cache cells: their build failures are
	// reported per request, not counted in the quarantine gauge (the live
	// policy still serves; only one historical version is unreadable).
	transient bool

	// mu serializes the one build; built latches the outcome (analysis or
	// quarantine error) forever.
	mu       sync.Mutex
	built    bool
	analysis *core.Analysis
	err      error
}

// newReadyCell wraps an analysis the server just built (create/update).
func newReadyCell(id string, version int, a *core.Analysis) *engineCell {
	return &engineCell{
		id: id, version: version,
		stats: versionStats(a),
		built: true, analysis: a,
	}
}

// newLazyCell indexes a stored version without touching its payload.
func newLazyCell(id string, version int, stats store.VersionStats) *engineCell {
	return &engineCell{id: id, version: version, stats: stats, recovered: true}
}

// newStatsCell indexes a stored version without touching its payload and
// without recovery accounting: replication installs these continuously as
// records apply, so they must not count toward the warm-pending gauge the
// boot-time warmer drains (see replicate.go).
func newStatsCell(id string, version int, stats store.VersionStats) *engineCell {
	return &engineCell{id: id, version: version, stats: stats}
}

// get returns the cell's analysis, building it on first call: the payload
// is fetched from the store, decoded, and an engine attached. Concurrent
// first callers block on the same build and all see its one outcome. A
// failed build quarantines the cell — the error is latched and every
// later get returns it without retrying (a corrupt payload does not fix
// itself; repair goes through the PUT path, which installs a new cell).
// source labels the cold-start histogram ("query", "warmer", "eager",
// "version").
func (c *engineCell) get(s *Server, source string) (*core.Analysis, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.built {
		return c.analysis, c.err
	}
	start := time.Now()
	a, err := c.build(s)
	c.built = true
	reg := s.pipeline.Obs()
	if err != nil {
		c.err = fmt.Errorf("policy %s version %d quarantined: %w", c.id, c.version, err)
		if !c.transient {
			reg.Gauge(metricQuarantined).Add(1)
		}
		if s.logger != nil {
			s.logger.Printf("server: %v", c.err)
		}
	} else {
		c.analysis = a
		reg.Counter(metricEngineBuilds, "source", source).Inc()
		reg.Histogram(metricColdStart, obs.TimeBuckets, "source", source).ObserveSince(start)
	}
	if c.recovered {
		reg.Gauge(metricWarmPending).Add(-1)
	}
	return c.analysis, c.err
}

func (c *engineCell) build(s *Server) (*core.Analysis, error) {
	payload, err := s.store.LoadPayload(c.id, c.version)
	if err != nil {
		return nil, err
	}
	a, err := core.DecodeAnalysisEnvelope(payload)
	if err != nil {
		return nil, err
	}
	s.pipeline.BuildEngine(a)
	return a, nil
}

// peek reports the cell's state without triggering a build: the analysis
// when built and healthy, the quarantine reason when built and poisoned,
// neither when still cold.
func (c *engineCell) peek() (a *core.Analysis, quarantined error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analysis, c.err
}

// startWarmer launches the background pool that populates lazy cells in
// ID order. It owns s.warmStop/s.warmDone; Close cancels it and waits.
func (s *Server) startWarmer(ids []string, workers int) {
	s.warmDone = make(chan struct{})
	s.warmStop = make(chan struct{})
	if workers > len(ids) {
		workers = len(ids)
	}
	jobs := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				s.mu.RLock()
				cell := s.live[id]
				s.mu.RUnlock()
				if cell == nil {
					continue // deleted/raced; nothing to warm
				}
				if a, err := cell.get(s, "warmer"); err == nil {
					// Pre-build the shared ground core too (no-op without
					// SharedCore), so the first query is solve-only.
					a.Engine.Warm()
				}
			}
		}()
	}
	go func() {
		defer close(s.warmDone)
		start := time.Now()
		for _, id := range ids {
			select {
			case jobs <- id:
			case <-s.warmStop:
				close(jobs)
				wg.Wait()
				return
			}
		}
		close(jobs)
		wg.Wait()
		s.pipeline.Obs().Gauge("quagmire_store_recovery_seconds", "phase", "warm").Set(time.Since(start).Seconds())
		if s.logger != nil {
			s.logger.Printf("server: background warmer finished %d policies in %s", len(ids), time.Since(start).Round(time.Millisecond))
		}
	}()
}

// Close stops the background warmer and waits for in-flight cell builds
// it owns to finish. Wire it into graceful drain after the HTTP server
// has shut down; it is safe to call when no warmer ever started, and
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.warmStop != nil {
			close(s.warmStop)
			<-s.warmDone
		}
	})
}

// versionEngineCacheSize bounds the historical version-engine cache: a
// pinned-version /check workload typically cycles through a handful of
// versions per policy, and each entry holds a full decoded analysis.
const versionEngineCacheSize = 32

// versionEngines is a small bounded LRU of engines for historical
// (non-latest) stored versions, shared by every /check request that pins
// one. Versions are immutable, so entries never need invalidation — only
// eviction. Reusing engineCell gives pinned checks the same singleflight
// decode and quarantine semantics as the live path.
type versionEngines struct {
	mu    sync.Mutex
	max   int
	cells map[string]*engineCell
	order []string // LRU order; front is the eviction candidate
}

func newVersionEngines(max int) *versionEngines {
	return &versionEngines{max: max, cells: map[string]*engineCell{}}
}

// analysis returns the cached analysis for id@n, decoding it on first
// use. The cell builds outside the cache lock, so a slow decode never
// blocks hits on other versions.
func (ve *versionEngines) analysis(s *Server, id string, n int) (*core.Analysis, error) {
	key := fmt.Sprintf("%s@%d", id, n)
	reg := s.pipeline.Obs()
	ve.mu.Lock()
	cell := ve.cells[key]
	if cell != nil {
		reg.Counter(metricVersionHits).Inc()
		ve.touch(key)
	} else {
		reg.Counter(metricVersionMisses).Inc()
		cell = &engineCell{id: id, version: n, transient: true}
		ve.cells[key] = cell
		ve.order = append(ve.order, key)
		for len(ve.order) > ve.max {
			evict := ve.order[0]
			ve.order = ve.order[1:]
			delete(ve.cells, evict)
		}
	}
	ve.mu.Unlock()
	a, err := cell.get(s, "version")
	if err != nil {
		// A version that cannot decode should not occupy an LRU slot — it
		// is reported per request, not served-around like a live policy.
		ve.mu.Lock()
		if ve.cells[key] == cell {
			delete(ve.cells, key)
			for i, k := range ve.order {
				if k == key {
					ve.order = append(ve.order[:i], ve.order[i+1:]...)
					break
				}
			}
		}
		ve.mu.Unlock()
	}
	return a, err
}

// touch moves key to the back of the LRU order. Callers hold ve.mu.
func (ve *versionEngines) touch(key string) {
	for i, k := range ve.order {
		if k == key {
			ve.order = append(append(ve.order[:i], ve.order[i+1:]...), key)
			return
		}
	}
}
