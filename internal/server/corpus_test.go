package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

// seedCorpus registers n small distinct policies through the public API.
func seedCorpus(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	texts := []string{corpus.Mini(),
		corpus.Generate(corpus.Config{Company: "Globex", Seed: 7, PracticeStatements: 6, DataRichness: 10, EntityRichness: 10}),
		corpus.Generate(corpus.Config{Company: "Initech", Seed: 11, PracticeStatements: 6, DataRichness: 10, EntityRichness: 10}),
	}
	for i := 0; i < n; i++ {
		var created map[string]any
		resp := doJSON(t, "POST", ts.URL+"/v1/policies",
			map[string]string{"name": fmt.Sprintf("pol%d", i), "text": texts[i%len(texts)]}, &created)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed %d: status %d (%v)", i, resp.StatusCode, created)
		}
	}
}

func TestCorpusStats(t *testing.T) {
	ts := newTestServer(t)
	seedCorpus(t, ts, 3)

	var out corpusStatsResponse
	resp := doJSON(t, "GET", ts.URL+"/v1/corpus/stats", nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if out.Policies != 3 || out.Analyzed != 3 || out.Quarantined != 0 {
		t.Fatalf("stats counts = %+v", out)
	}
	if out.Segments == 0 || out.Practices == 0 || out.Edges == 0 {
		t.Errorf("zero aggregate totals: %+v", out)
	}
	if out.DistinctDataTypes == 0 || out.DistinctEntities == 0 {
		t.Errorf("zero vocabulary sizes: %+v", out)
	}
	if len(out.TaxonomyOverlap) == 0 {
		t.Fatal("empty taxonomy overlap")
	}
	// Overlap is ranked: counts never increase down the list, and the
	// generated policies share core data types so the top term spans
	// more than one policy.
	for i := 1; i < len(out.TaxonomyOverlap); i++ {
		if out.TaxonomyOverlap[i].Policies > out.TaxonomyOverlap[i-1].Policies {
			t.Errorf("taxonomy overlap not sorted at %d: %+v", i, out.TaxonomyOverlap)
		}
	}
	if out.TaxonomyOverlap[0].Policies < 2 {
		t.Errorf("top overlap term spans %d policies, want >= 2", out.TaxonomyOverlap[0].Policies)
	}
	if len(out.TopVague) == 0 {
		t.Error("no vague conditions aggregated (Mini + generated policies contain them)")
	}
}

func TestCorpusStatsEmpty(t *testing.T) {
	ts := newTestServer(t)
	var out corpusStatsResponse
	resp := doJSON(t, "GET", ts.URL+"/v1/corpus/stats", nil, &out)
	if resp.StatusCode != http.StatusOK || out.Policies != 0 || out.Analyzed != 0 {
		t.Fatalf("empty stats = %d %+v", resp.StatusCode, out)
	}
}

// corpusQueryLines posts a corpus query and returns the parsed result
// rows and the summary from the NDJSON stream.
func corpusQueryLines(t *testing.T, ts *httptest.Server, q string) ([]corpusQueryLine, corpusQuerySummary) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": q})
	resp, err := http.Post(ts.URL+"/v1/corpus/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus query status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var rows []corpusQueryLine
	var sum corpusQuerySummary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("line after summary: %s", sc.Text())
		}
		var wrapper struct {
			Summary *corpusQuerySummary `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &wrapper); err == nil && wrapper.Summary != nil {
			sum = *wrapper.Summary
			sawSummary = true
			continue
		}
		var row corpusQueryLine
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return rows, sum
}

func TestCorpusQueryStream(t *testing.T) {
	ts := newTestServer(t)
	seedCorpus(t, ts, 3)

	rows, sum := corpusQueryLines(t, ts, "Does Acme share my email address with advertising partners?")
	if len(rows) != 3 {
		t.Fatalf("got %d result rows, want 3", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		if row.ID == "" {
			t.Errorf("row missing id: %+v", row)
		}
		if seen[row.ID] {
			t.Errorf("duplicate row for %s", row.ID)
		}
		seen[row.ID] = true
		if row.Verdict == "" && row.Error == "" {
			t.Errorf("row has neither verdict nor error: %+v", row)
		}
	}
	if sum.Policies != 3 {
		t.Errorf("summary.policies = %d, want 3", sum.Policies)
	}
	if got := sum.Valid + sum.Invalid + sum.Unknown + sum.Errors; got != 3 {
		t.Errorf("summary verdict counts total %d, want 3 (%+v)", got, sum)
	}
	// Mini explicitly shares email addresses with advertising partners.
	if sum.Valid == 0 {
		t.Errorf("no VALID verdicts in sweep: %+v", sum)
	}
	if sum.Incomplete {
		t.Errorf("sweep marked incomplete: %+v", sum)
	}
}

func TestCorpusQueryValidation(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]any
	if resp := doJSON(t, "POST", ts.URL+"/v1/corpus/query", map[string]string{}, &out); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status = %d, want 400", resp.StatusCode)
	}
	// Empty corpus: a valid query streams just the summary.
	rows, sum := corpusQueryLines(t, ts, "Do you collect email addresses?")
	if len(rows) != 0 || sum.Policies != 0 {
		t.Errorf("empty-corpus sweep = %d rows, %+v", len(rows), sum)
	}
}

func TestListPoliciesPagination(t *testing.T) {
	ts := newTestServer(t)
	seedCorpus(t, ts, 3)

	get := func(params string) ([]map[string]any, *http.Response) {
		var list []map[string]any
		resp := doJSON(t, "GET", ts.URL+"/v1/policies"+params, nil, &list)
		return list, resp
	}

	all, resp := get("")
	if resp.StatusCode != http.StatusOK || len(all) != 3 {
		t.Fatalf("unpaginated list = %d items, status %d", len(all), resp.StatusCode)
	}
	if resp.Header.Get("X-Total-Count") != "3" {
		t.Errorf("X-Total-Count = %q, want 3", resp.Header.Get("X-Total-Count"))
	}

	page, resp := get("?offset=1&limit=1")
	if len(page) != 1 {
		t.Fatalf("offset=1&limit=1 returned %d items", len(page))
	}
	if resp.Header.Get("X-Total-Count") != "3" {
		t.Errorf("paginated X-Total-Count = %q, want 3", resp.Header.Get("X-Total-Count"))
	}
	if page[0]["id"] != all[1]["id"] {
		t.Errorf("page item = %v, want %v (deterministic order)", page[0]["id"], all[1]["id"])
	}

	if tail, _ := get("?offset=2"); len(tail) != 1 || tail[0]["id"] != all[2]["id"] {
		t.Errorf("offset=2 tail = %v", tail)
	}
	if empty, _ := get("?offset=99"); len(empty) != 0 {
		t.Errorf("offset past end returned %d items", len(empty))
	}
	for _, bad := range []string{"?offset=-1", "?limit=x", "?offset=1.5"} {
		resp, err := http.Get(ts.URL + "/v1/policies" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
	// Pagination must walk the corpus without gaps or overlap.
	var walked []any
	for off := 0; off < 3; off++ {
		page, _ := get(fmt.Sprintf("?offset=%d&limit=1", off))
		if len(page) != 1 {
			t.Fatalf("offset=%d limit=1 returned %d items", off, len(page))
		}
		walked = append(walked, page[0]["id"])
	}
	for i := range walked {
		if walked[i] != all[i]["id"] {
			t.Errorf("walked[%d] = %v, want %v", i, walked[i], all[i]["id"])
		}
	}
}
