package server

// Shutdown-drain behavior: a disk-backed server with a long solve in
// flight receives the SIGTERM-equivalent (http.Server.Shutdown, exactly
// what cmd/quagmired calls on signal). The in-flight request must finish
// with a real answer, requests arriving after drain begins must be
// refused, and closing the store afterwards must compact the WAL into a
// snapshot so the next open replays zero records.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

func TestDrainCompletesInflightThenCompactsWAL(t *testing.T) {
	dir := t.TempDir()

	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDisk(dir, store.Options{Obs: p.Obs()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p, Store: st, Timeouts: Timeouts{Solve: 30 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}

	// Serve on a real listener through an http.Server so Shutdown exercises
	// the same drain path as quagmired's signal handler.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	var created map[string]any
	resp := doJSON(t, "POST", base+"/v1/policies",
		map[string]string{"name": "mini", "text": corpus.Mini()}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d", resp.StatusCode)
	}
	id := created["id"].(string)

	// The long solve: the hook pins the admitted request until we let go,
	// so drain starts with work genuinely in flight.
	gate := make(chan struct{})
	var entered atomic.Bool
	s.testHookSolverAdmitted = func(r *http.Request) {
		entered.Store(true)
		select {
		case <-gate:
		case <-r.Context().Done():
		}
	}
	type result struct {
		status  int
		verdict string
	}
	inflight := make(chan result, 1)
	go func() {
		var out map[string]any
		resp := doJSON(t, "POST", base+"/v1/policies/"+id+"/query",
			map[string]string{"question": "Does Acme sell my personal information?"}, &out)
		verdict, _ := out["verdict"].(string)
		inflight <- result{resp.StatusCode, verdict}
	}()
	waitUntil(t, func() bool { return entered.Load() })

	// SIGTERM-equivalent: Shutdown closes the listener immediately and
	// blocks until in-flight requests finish (or the drain deadline).
	shutdownDone := make(chan error, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownDone <- httpSrv.Shutdown(drainCtx) }()

	// Late requests are refused once drain begins: the listener is closed,
	// so new connections fail outright (a fronting LB would surface 503).
	waitUntil(t, func() bool {
		lateResp, err := http.Get(base + "/healthz")
		if err != nil {
			return true
		}
		lateResp.Body.Close()
		return false
	})

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	r := <-inflight
	if r.status != http.StatusOK || r.verdict == "" {
		t.Fatalf("in-flight request = %d verdict %q, want 200 with a verdict", r.status, r.verdict)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// Clean shutdown closes the store, compacting the WAL into a snapshot.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen against a fresh registry: zero WAL records replayed, and the
	// policy is served from the snapshot unchanged.
	p2, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenDisk(dir, store.Options{Obs: p2.Obs()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if n := p2.Obs().Snapshot().Counters["quagmire_store_wal_replayed_records_total"]; n != 0 {
		t.Errorf("reopen after clean shutdown replayed %d WAL records, want 0", n)
	}
	s2, err := New(Options{Pipeline: p2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var got map[string]any
	resp = doJSON(t, "GET", ts2.URL+"/v1/policies/"+id, nil, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy lost across clean shutdown: GET = %d", resp.StatusCode)
	}
	if company, _ := got["company"].(string); !strings.EqualFold(company, "Acme") {
		t.Errorf("recovered company = %q, want Acme", company)
	}
}
