package server

// Cross-policy corpus analytics: aggregate statistics over every stored
// policy and compliance-query fan-out across the whole corpus. The
// paper's thesis is that ambiguity shows up when interpretations are
// compared *across* policies; these endpoints are where that comparison
// happens. Both fan out over the live engine cells through a bounded
// worker pool — a corpus of thousands of policies never spawns thousands
// of goroutines — and each policy gets its own deadline so one
// pathological engine cannot starve the rest of the sweep. The query
// endpoint streams NDJSON results as they land rather than buffering the
// corpus in memory; the whole fan-out occupies one solver admission slot.

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// DefaultCorpusPolicyTimeout bounds one policy's share of a corpus
// query: long enough for a cold engine build plus a solve, short enough
// that a resource-out on one policy costs the sweep seconds, not the
// whole request budget.
const DefaultCorpusPolicyTimeout = 5 * time.Second

// CorpusConfig bounds the cross-policy fan-out endpoints.
type CorpusConfig struct {
	// Workers is the fan-out pool size; 0 selects max(2, GOMAXPROCS).
	Workers int
	// PolicyTimeout is the per-policy deadline inside a corpus query;
	// 0 selects DefaultCorpusPolicyTimeout, negative disables.
	PolicyTimeout time.Duration
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Workers <= 0 {
		c.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	c.PolicyTimeout = normalizeTimeout(c.PolicyTimeout, DefaultCorpusPolicyTimeout)
	return c
}

// corpusItem is one policy in a fan-out: the consistent (metadata, cell)
// pair snapshotted under the server lock.
type corpusItem struct {
	meta store.Policy
	cell *engineCell
}

// snapshotCorpus captures every live policy in store-list order. The
// snapshot is taken under the read lock but used outside it, so a sweep
// never blocks writers for its whole duration.
func (s *Server) snapshotCorpus() ([]corpusItem, error) {
	s.mu.RLock()
	pols, err := s.store.List()
	items := make([]corpusItem, 0, len(pols))
	for _, p := range pols {
		if cell := s.live[p.ID]; cell != nil {
			items = append(items, corpusItem{meta: p, cell: cell})
		}
	}
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return items, nil
}

// forEachPolicy runs fn over items through a bounded worker pool,
// stopping early when ctx expires. It returns how many items were
// dispatched before the context fired.
func (s *Server) forEachPolicy(ctx context.Context, items []corpusItem, fn func(corpusItem)) int {
	workers := s.corpus.Workers
	if workers > len(items) {
		workers = len(items)
	}
	jobs := make(chan corpusItem)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				fn(it)
			}
		}()
	}
	dispatched := 0
	for _, it := range items {
		select {
		case jobs <- it:
			dispatched++
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return dispatched
		}
	}
	close(jobs)
	wg.Wait()
	return dispatched
}

// termCount is one (term, counts) aggregate row.
type termCount struct {
	Term string `json:"term"`
	// Policies is the number of distinct policies the term appears in.
	Policies int `json:"policies"`
	// Occurrences is the total occurrence count (0 where not meaningful).
	Occurrences int `json:"occurrences,omitempty"`
}

// corpusStatsResponse is the GET /v1/corpus/stats payload.
type corpusStatsResponse struct {
	// Policies and Versions count the stored corpus; Segments, Practices
	// and Edges are totals from stored version metadata (they include
	// quarantined policies, whose stats persisted even though their
	// payloads no longer decode).
	Policies  int `json:"policies"`
	Versions  int `json:"versions"`
	Segments  int `json:"segments"`
	Practices int `json:"practices"`
	Edges     int `json:"edges"`
	// Analyzed counts policies whose engines were available or built for
	// this sweep; Quarantined counts policies excluded by decode failure.
	Analyzed    int `json:"analyzed"`
	Quarantined int `json:"quarantined"`
	// DistinctDataTypes and DistinctEntities are corpus-wide vocabulary
	// sizes over the analyzed policies.
	DistinctDataTypes int `json:"distinct_data_types"`
	DistinctEntities  int `json:"distinct_entities"`
	// TopVague ranks vague conditions by how many policies lean on them —
	// the cross-policy ambiguity hot spots.
	TopVague []termCount `json:"top_vague"`
	// TaxonomyOverlap ranks data types by how many policies collect them.
	TaxonomyOverlap []termCount `json:"taxonomy_overlap"`
}

const corpusTopN = 10

func (s *Server) handleCorpusStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	items, err := s.snapshotCorpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store list failed: %v", err)
		return
	}
	reg := s.pipeline.Obs()
	reg.Counter("quagmire_corpus_stats_total").Inc()

	resp := corpusStatsResponse{Policies: len(items)}
	for _, it := range items {
		resp.Versions += it.meta.Versions
		resp.Segments += it.cell.stats.Segments
		resp.Practices += it.cell.stats.Practices
		resp.Edges += it.cell.stats.Edges
	}

	// Vocabulary aggregation needs decoded analyses; build them through
	// the bounded pool (a warm corpus skips straight to the cached
	// engines) and merge per-policy term sets under one lock.
	var mu sync.Mutex
	vaguePolicies := map[string]int{}
	vagueOccurrences := map[string]int{}
	dataTypePolicies := map[string]int{}
	entities := map[string]bool{}
	s.forEachPolicy(r.Context(), items, func(it corpusItem) {
		a, err := it.cell.get(s, "corpus")
		if err != nil {
			mu.Lock()
			resp.Quarantined++
			mu.Unlock()
			return
		}
		vague := map[string]int{}
		for _, p := range a.Extraction.Practices {
			for _, v := range p.VagueTerms {
				vague[v]++
			}
		}
		types := a.KG.DataTypes()
		ents := a.KG.Entities()
		mu.Lock()
		resp.Analyzed++
		for term, n := range vague {
			vaguePolicies[term]++
			vagueOccurrences[term] += n
		}
		for _, t := range types {
			dataTypePolicies[t]++
		}
		for _, e := range ents {
			entities[e] = true
		}
		mu.Unlock()
	})

	resp.DistinctDataTypes = len(dataTypePolicies)
	resp.DistinctEntities = len(entities)
	resp.TopVague = topTerms(vaguePolicies, vagueOccurrences, corpusTopN)
	resp.TaxonomyOverlap = topTerms(dataTypePolicies, nil, corpusTopN)
	reg.Histogram("quagmire_corpus_sweep_seconds", obs.TimeBuckets, "op", "stats").ObserveSince(start)
	writeJSON(w, http.StatusOK, resp)
}

// topTerms ranks terms by policy count (ties break lexicographically,
// keeping the response deterministic) and returns the top n.
func topTerms(policies, occurrences map[string]int, n int) []termCount {
	out := make([]termCount, 0, len(policies))
	for term, p := range policies {
		tc := termCount{Term: term, Policies: p}
		if occurrences != nil {
			tc.Occurrences = occurrences[term]
		}
		out = append(out, tc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Policies != out[j].Policies {
			return out[i].Policies > out[j].Policies
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// corpusQueryRequest is the POST /v1/corpus/query body.
type corpusQueryRequest struct {
	Query string `json:"query"`
}

// corpusQueryLine is one streamed NDJSON result row.
type corpusQueryLine struct {
	ID            string        `json:"id"`
	Name          string        `json:"name"`
	Company       string        `json:"company,omitempty"`
	Verdict       query.Verdict `json:"verdict,omitempty"`
	ConditionalOn []string      `json:"conditional_on,omitempty"`
	Error         string        `json:"error,omitempty"`
}

// corpusQuerySummary is the final NDJSON line of a corpus query, wrapped
// in {"summary": ...} so stream consumers can tell it from result rows.
type corpusQuerySummary struct {
	Policies int   `json:"policies"`
	Valid    int   `json:"valid"`
	Invalid  int   `json:"invalid"`
	Unknown  int   `json:"unknown"`
	Errors   int   `json:"errors"`
	Elapsed  int64 `json:"elapsed_ms"`
	// Incomplete marks a sweep the request deadline cut short; the counts
	// cover only the policies that were dispatched in time.
	Incomplete bool `json:"incomplete,omitempty"`
}

// handleCorpusQuery fans one compliance query out over every policy and
// streams per-policy verdicts as NDJSON in completion order, ending with
// a summary line. The whole sweep runs inside one solver admission slot;
// each policy gets its own deadline so a single resource-out costs
// seconds, not the request budget.
func (s *Server) handleCorpusQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req corpusQueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	items, err := s.snapshotCorpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store list failed: %v", err)
		return
	}
	reg := s.pipeline.Obs()
	reg.Counter("quagmire_corpus_queries_total").Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)

	lines := make(chan corpusQueryLine, s.corpus.Workers)
	var dispatched int
	go func() {
		defer close(lines)
		dispatched = s.forEachPolicy(r.Context(), items, func(it corpusItem) {
			lines <- s.corpusAsk(r.Context(), it, req.Query)
		})
	}()

	var sum corpusQuerySummary
	sum.Policies = len(items)
	for line := range lines {
		switch line.Verdict {
		case query.Valid:
			sum.Valid++
		case query.Invalid:
			sum.Invalid++
		case query.Unknown:
			sum.Unknown++
		default:
			sum.Errors++
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; workers already drained via lines
		}
		_ = rc.Flush()
	}
	sum.Incomplete = dispatched < len(items)
	sum.Elapsed = time.Since(start).Milliseconds()
	reg.Histogram("quagmire_corpus_sweep_seconds", obs.TimeBuckets, "op", "query").ObserveSince(start)
	_ = enc.Encode(struct {
		Summary corpusQuerySummary `json:"summary"`
	}{sum})
	_ = rc.Flush()
}

// corpusAsk answers the query for one policy under the per-policy
// deadline and renders the result (or failure) as a stream line.
func (s *Server) corpusAsk(ctx context.Context, it corpusItem, q string) corpusQueryLine {
	line := corpusQueryLine{ID: it.meta.ID, Name: it.meta.Name, Company: it.meta.Company}
	reg := s.pipeline.Obs()
	pstart := time.Now()
	if s.corpus.PolicyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.corpus.PolicyTimeout)
		defer cancel()
	}
	a, err := it.cell.get(s, "corpus")
	if err != nil {
		line.Error = err.Error()
		reg.Counter("quagmire_corpus_policy_errors_total", "reason", "quarantined").Inc()
		return line
	}
	res, err := a.Engine.Ask(ctx, q)
	reg.Histogram("quagmire_corpus_policy_seconds", obs.TimeBuckets).ObserveSince(pstart)
	if err != nil {
		line.Error = err.Error()
		reason := "ask"
		if ctx.Err() != nil {
			reason = "timeout"
		}
		reg.Counter("quagmire_corpus_policy_errors_total", "reason", reason).Inc()
		return line
	}
	line.Verdict = res.Verdict
	line.ConditionalOn = res.ConditionalOn
	reg.Counter("quagmire_corpus_verdicts_total", "verdict", string(res.Verdict)).Inc()
	return line
}
