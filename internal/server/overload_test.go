package server

// Overload behavior: admission control bounds solver concurrency, excess
// load is shed with 429 + Retry-After, deadlines are enforced within a
// grace bound, and a panicking handler leaves the server serving. Runs
// under -race in CI's server e2e leg.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

// newOverloadServer builds a server with explicit lifecycle knobs and
// returns the Server (for hooks and metrics) plus its test listener.
func newOverloadServer(t *testing.T, tmo Timeouts, adm AdmissionConfig) (*Server, *httptest.Server) {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Pipeline: p, Timeouts: tmo, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// waitUntil polls cond until it holds, failing the test after a bound
// generous enough for loaded -race CI runners.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedsPastAdmissionCap floods /verify-batch with 4N+ the
// admission cap while a slow fake solver pins every admitted slot, then
// asserts the acceptance contract: exactly cap requests run
// simultaneously (via the peak gauge), the queue peaks at its configured
// bound, and everything else is shed with 429 + Retry-After.
func TestOverloadShedsPastAdmissionCap(t *testing.T) {
	const (
		capN     = 2
		queue    = 2
		flood    = 4 * capN * 2 // 16 concurrent requests, 4N and then some
		waitFor  = 150 * time.Millisecond
		solveTmo = 10 * time.Second
	)
	s, ts := newOverloadServer(t,
		Timeouts{Solve: solveTmo},
		AdmissionConfig{MaxConcurrent: capN, MaxQueue: queue, QueueWait: waitFor})

	id := createPolicy(t, ts)["id"].(string)

	// Slow fake solver: admitted requests block until released (or their
	// deadline fires), holding their slot like a pathological formula.
	release := make(chan struct{})
	var admitted atomic.Int32
	s.testHookSolverAdmitted = func(r *http.Request) {
		admitted.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}

	body := `{"questions":["Does Acme sell my personal information?"]}`
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, flood)
	var wg sync.WaitGroup

	// Two blockers first so the slots are deterministically full...
	for i := 0; i < capN; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/verify-batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	waitUntil(t, func() bool { return admitted.Load() >= capN })
	// ...then the flood, which can only queue or shed.
	for i := capN; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/verify-batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}

	// Collect every flood response (all must shed: the slots never free);
	// only then release the blockers.
	shed := 0
	for shed < flood-capN {
		o := <-results
		if o.status != http.StatusTooManyRequests {
			t.Fatalf("flood request = %d, want 429", o.status)
		}
		if o.retryAfter == "" {
			t.Error("429 without Retry-After")
		}
		shed++
	}
	close(release)
	wg.Wait()
	close(results)
	for o := range results {
		if o.status != http.StatusOK {
			t.Errorf("admitted request = %d, want 200", o.status)
		}
	}

	if got := admitted.Load(); got != capN {
		t.Errorf("admitted = %d, want exactly %d (cap)", got, capN)
	}
	snap := s.pipeline.Metrics()
	if peak := snap.Gauges["quagmire_http_solver_inflight_peak"]; peak != capN {
		t.Errorf("inflight peak gauge = %v, want %d", peak, capN)
	}
	if qp := snap.Gauges["quagmire_http_solver_queue_depth_peak"]; qp != queue {
		t.Errorf("queue depth peak gauge = %v, want the configured bound %d", qp, queue)
	}
	var shedTotal uint64
	for id, v := range snap.Counters {
		if strings.HasPrefix(id, "quagmire_http_shed_total") {
			shedTotal += v
		}
	}
	if shedTotal != flood-capN {
		t.Errorf("shed counter = %d, want %d", shedTotal, flood-capN)
	}
	if inflight := snap.Gauges["quagmire_http_solver_inflight"]; inflight != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", inflight)
	}
}

// TestOverloadDeadlineEnforced pins that a solver request slower than its
// deadline is cut off within a grace bound and surfaces as 504, not as a
// hung connection or a masked 422.
func TestOverloadDeadlineEnforced(t *testing.T) {
	const deadline = 200 * time.Millisecond
	s, ts := newOverloadServer(t, Timeouts{Solve: deadline}, AdmissionConfig{})
	id := createPolicy(t, ts)["id"].(string)

	s.testHookSolverAdmitted = func(r *http.Request) {
		<-r.Context().Done() // the slow fake solver honors cancellation
	}

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/query", "application/json",
		strings.NewReader(`{"question":"Does Acme sell my personal information?"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow solve = %d, want 504", resp.StatusCode)
	}
	const grace = 2 * time.Second // generous for -race CI runners
	if elapsed > deadline+grace {
		t.Errorf("request took %s, deadline %s + grace %s exceeded", elapsed, deadline, grace)
	}
	if n := s.pipeline.Metrics().Counters["quagmire_http_deadline_exceeded_total"]; n == 0 {
		t.Error("deadline counter not incremented")
	}
}

// TestOverloadQueueWaitSheds pins the queue-timeout path: a queued
// request whose slot never frees is shed after ~QueueWait with reason
// "timeout", and its wait never exceeds QueueWait by more than grace.
func TestOverloadQueueWaitSheds(t *testing.T) {
	const wait = 100 * time.Millisecond
	s, ts := newOverloadServer(t,
		Timeouts{Solve: 10 * time.Second},
		AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, QueueWait: wait})
	id := createPolicy(t, ts)["id"].(string)

	release := make(chan struct{})
	var admitted atomic.Int32
	s.testHookSolverAdmitted = func(r *http.Request) {
		if admitted.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}
	}
	defer close(release)

	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/query", "application/json",
			strings.NewReader(`{"question":"Does Acme sell my personal information?"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return admitted.Load() >= 1 })

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/policies/"+id+"/query", "application/json",
		strings.NewReader(`{"question":"Does Acme sell my personal information?"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued past QueueWait = %d, want 429", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > wait+2*time.Second {
		t.Errorf("queue shed took %s, want ~%s", elapsed, wait)
	}
	if v := s.pipeline.Metrics().Counters[`quagmire_http_shed_total{reason="timeout"}`]; v != 1 {
		t.Errorf("timeout shed counter = %d, want 1", v)
	}
	release <- struct{}{}
	<-blockerDone
}

// TestOverloadPanicRecovery pins panic containment: a panicking solver
// request gets a 500 JSON envelope, the panic counter increments, the
// admission slot is released, and the very next request succeeds.
func TestOverloadPanicRecovery(t *testing.T) {
	s, ts := newOverloadServer(t, Timeouts{}, AdmissionConfig{MaxConcurrent: 1})

	var bomb atomic.Bool
	bomb.Store(true)
	s.testHookSolverAdmitted = func(r *http.Request) {
		if bomb.CompareAndSwap(true, false) {
			panic("pathological formula blew up the handler")
		}
	}

	body := `{"script":"(declare-fun p () Bool)\n(assert p)\n(check-sat)"}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("panic response content type = %q", ct)
	}
	if n := s.pipeline.Metrics().Counters["quagmire_http_panics_total"]; n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}

	// The process survived, the slot was released (cap is 1: a leaked slot
	// would wedge this request in the queue), and serving continues.
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200", resp.StatusCode)
	}
}

// TestOverloadAdmissionDisabled pins the opt-out: MaxConcurrent < 0 turns
// the limiter off entirely and the hook still runs requests directly.
func TestOverloadAdmissionDisabled(t *testing.T) {
	s, ts := newOverloadServer(t, Timeouts{}, AdmissionConfig{MaxConcurrent: -1})
	if s.adm != nil {
		t.Fatal("admission not disabled by MaxConcurrent < 0")
	}
	body := `{"script":"(declare-fun p () Bool)\n(assert p)\n(check-sat)"}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve without admission = %d", resp.StatusCode)
	}
}

// TestOverloadBatchDeadlinePropagates drives a real (unhooked) batch with
// an already-expired context through the engine seam, pinning that
// cancellation reaches AskBatch and maps to 504.
func TestOverloadBatchDeadlinePropagates(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err = a.Engine.AskBatch(ctx, []string{"Does Acme sell my personal information?"})
	if err == nil {
		t.Fatal("AskBatch with expired context returned nil error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("AskBatch error = %v, want deadline exceeded", err)
	}
}
