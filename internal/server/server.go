// Package server exposes the pipeline as a JSON HTTP API: policies are
// uploaded and analyzed, queried for extraction statistics, edges and
// vague conditions, verified against natural-language compliance queries,
// and updated incrementally across versions. Policies and their full
// version history live in a store.PolicyStore — with the disk backend the
// server recovers every policy across restarts: lazily by default (each
// query engine builds on first demand, a background warmer fills the rest,
// and a corrupt payload quarantines one policy instead of refusing boot;
// see lazy.go), or eagerly on request. A raw SMT-LIB solving endpoint
// exposes the built-in solver. The server is
// self-contained over net/http (Go 1.22 pattern routing) with request
// logging, body-size limits and JSON error envelopes.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/report"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// MaxBodyBytes caps request bodies (policies can be large but bounded).
const MaxBodyBytes = 4 << 20

// Server is the HTTP API server. Create with New.
type Server struct {
	pipeline *core.Pipeline
	limits   smt.Limits
	logger   *log.Logger
	store    store.PolicyStore
	timeouts Timeouts
	corpus   CorpusConfig

	// replica, when non-nil, marks this server a read-only follower:
	// writes 403 with a pointer at the primary, /healthz gains the
	// replication status section (replicate.go).
	replica *ReplicaOptions

	// sem limits in-flight requests across all routes when non-nil
	// (excess gets 503); adm admission-controls solver-backed endpoints
	// specifically (queue, then 429).
	sem chan struct{}
	adm *admission

	// testHookSolverAdmitted, when non-nil, runs inside the admitted
	// section of every solver-backed endpoint, before the real handler.
	// Tests use it to simulate slow or panicking solvers; production
	// leaves it nil.
	testHookSolverAdmitted func(r *http.Request)

	// mu orders store mutations with live-cell installs: writers hold it
	// across the store write and the live-map swap, readers across the
	// store read and the live lookup, so the pair is always consistent.
	// Cells themselves build outside this lock (see lazy.go).
	mu   sync.RWMutex
	live map[string]*engineCell

	// versions caches engines for historical stored versions (lazy.go).
	versions *versionEngines

	// Background warmer lifecycle (lazy.go): warmStop cancels it, warmDone
	// closes when it exits, Close is idempotent through closeOnce.
	warmStop  chan struct{}
	warmDone  chan struct{}
	closeOnce sync.Once
}

// Options configures the server.
type Options struct {
	// Pipeline runs the analyses; required.
	Pipeline *core.Pipeline
	// Store persists policies and version history; nil selects a fresh
	// in-memory store (state dies with the process).
	Store store.PolicyStore
	// SolverLimits bounds the /v1/solve endpoint.
	SolverLimits smt.Limits
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxConcurrent caps in-flight requests across all routes; excess
	// requests receive 503. 0 disables the limiter. The health, metrics
	// and debug endpoints are exempt so operators can still observe a
	// saturated server.
	MaxConcurrent int
	// Timeouts sets the per-endpoint-class request deadlines; zero fields
	// select defaults (reads 2s, solver/analysis 30s), negative disables.
	Timeouts Timeouts
	// Admission bounds concurrent solver-backed requests (query,
	// verify-batch, explore, solve): a bounded semaphore plus a short
	// wait queue, shedding excess with 429 + Retry-After. The zero value
	// selects defaults; MaxConcurrent < 0 disables.
	Admission AdmissionConfig
	// Recovery selects lazy (default) or eager engine rebuild for stored
	// policies, and sizes the background warmer (see lazy.go).
	Recovery RecoveryOptions
	// Corpus bounds the cross-policy fan-out endpoints (corpus.go); zero
	// fields select defaults.
	Corpus CorpusConfig
	// Replica marks this server a read-only follower serving replicated
	// state (replicate.go); nil is a normal writable primary.
	Replica *ReplicaOptions
}

// New constructs a server. When the store already holds policies (a
// disk-backed store after a restart) they are indexed into lazy engine
// cells: boot touches only metadata, each policy's engine builds on first
// query (or via the background warmer), and a payload that fails to
// decode quarantines that one policy instead of refusing boot. With
// Recovery.Eager every engine is rebuilt before New returns, matching the
// old behavior minus the boot abort.
func New(opts Options) (*Server, error) {
	if opts.Pipeline == nil {
		return nil, fmt.Errorf("server: Options.Pipeline is required")
	}
	st := opts.Store
	if st == nil {
		st = store.NewMem(store.Options{Obs: opts.Pipeline.Obs()})
	}
	srv := &Server{
		pipeline: opts.Pipeline,
		limits:   opts.SolverLimits,
		logger:   opts.Logger,
		store:    st,
		timeouts: opts.Timeouts.withDefaults(),
		corpus:   opts.Corpus.withDefaults(),
		replica:  opts.Replica,
		adm:      newAdmission(opts.Admission, opts.Pipeline.Obs()),
		live:     map[string]*engineCell{},
		versions: newVersionEngines(versionEngineCacheSize),
	}
	if opts.MaxConcurrent > 0 {
		srv.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	if err := srv.recoverLive(opts.Recovery); err != nil {
		return nil, err
	}
	return srv, nil
}

// recoverLive rebuilds the live map from the store. Store recovery proper
// (snapshot load + WAL replay) already happened when the store was
// opened; this layer indexes each policy's latest version into an
// engineCell — metadata only, no payload decode — then either builds
// every cell in place (eager) or hands the ID list to the background
// warmer (lazy). In both modes a payload that fails to decode quarantines
// that one policy; recovery itself only fails when the store cannot be
// read at all.
func (s *Server) recoverLive(rec RecoveryOptions) error {
	start := time.Now()
	pols, err := s.store.List()
	if err != nil {
		return fmt.Errorf("server: recover: %w", err)
	}
	reg := s.pipeline.Obs()
	reg.SetHelp(metricQuarantined, "Policies whose stored payload failed to decode; served as 503 until repaired.")
	reg.SetHelp(metricWarmPending, "Recovered policies whose engine has not been built yet.")
	reg.SetHelp(metricColdStart, "Time to decode a stored payload and build its engine, by trigger source.")
	ids := make([]string, 0, len(pols))
	for _, p := range pols {
		metas, err := s.store.Versions(p.ID)
		if err != nil || len(metas) == 0 {
			return fmt.Errorf("server: recover %s: %w", p.ID, err)
		}
		s.live[p.ID] = newLazyCell(p.ID, p.Versions, metas[len(metas)-1].Stats)
		ids = append(ids, p.ID)
	}
	if len(pols) == 0 {
		return nil
	}
	reg.Gauge(metricWarmPending).Set(float64(len(pols)))
	reg.Gauge("quagmire_store_recovery_seconds", "phase", "index").Set(time.Since(start).Seconds())
	if rec.Eager {
		for _, id := range ids {
			_, _ = s.live[id].get(s, "eager") // failure = quarantine, not abort
		}
		elapsed := time.Since(start)
		reg.Gauge("quagmire_store_recovery_seconds", "phase", "rebuild").Set(elapsed.Seconds())
		if s.logger != nil {
			s.logger.Printf("server: rebuilt %d policies from store in %s (%d quarantined)",
				len(pols), elapsed.Round(time.Millisecond), int(reg.Gauge(metricQuarantined).Value()))
		}
		return nil
	}
	if s.logger != nil {
		s.logger.Printf("server: indexed %d policies from store in %s (lazy rebuild)",
			len(pols), time.Since(start).Round(time.Millisecond))
	}
	if workers := rec.warmWorkers(); workers > 0 {
		s.startWarmer(ids, workers)
	}
	return nil
}

// expvarRegistry is the registry the process-global "quagmire" expvar
// reads; expvar.Publish is global and panics on duplicates, so the var is
// published once and re-pointed at the most recent server's registry.
var expvarRegistry atomic.Pointer[obs.Registry]

var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("quagmire", expvar.Func(func() any {
		return expvarRegistry.Load().Snapshot()
	}))
})

// Handler returns the routed HTTP handler with middleware applied. The
// observability routes — Prometheus text on /metrics, expvar JSON on
// /debug/vars, the pprof suite under /debug/pprof/ — are mounted here on
// the server's own mux, not on http.DefaultServeMux, so binding the API
// to a port never accidentally exposes another library's debug handlers.
//
// API routes are registered per lifecycle class: cheap reads get the Read
// deadline, analysis writes (create/update) get the Solve deadline, and
// solver-backed endpoints additionally pass admission control. The
// observability routes stay bare — a deadline on /debug/pprof/profile
// would truncate profiles, and operators must be able to scrape a server
// that is saturated or wedged.
func (s *Server) Handler() http.Handler {
	expvarRegistry.Store(s.pipeline.Obs())
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", s.readClass(s.handleHealth))
	// Replication endpoints mount only when the store can ship state, and
	// stay bare like the observability routes: the WAL tail is a long-lived
	// stream a read deadline would sever, and a follower must be able to
	// catch up from a primary saturated with the very load it is there to
	// absorb (limiterExempt covers the prefix).
	if rep, ok := s.store.(store.Replicator); ok {
		mux.HandleFunc("GET /v1/replicate/snapshot", s.handleReplicateSnapshot(rep))
		mux.HandleFunc("GET /v1/replicate/wal", s.handleReplicateWAL(rep))
	}
	mux.HandleFunc("POST /v1/policies", s.analyzeClass(s.writeGuard(s.handleCreatePolicy)))
	mux.HandleFunc("GET /v1/policies", s.readClass(s.handleListPolicies))
	mux.HandleFunc("GET /v1/policies/{id}", s.readClass(s.handleGetPolicy))
	mux.HandleFunc("PUT /v1/policies/{id}", s.analyzeClass(s.writeGuard(s.handleUpdatePolicy)))
	mux.HandleFunc("GET /v1/policies/{id}/versions", s.readClass(s.handleVersions))
	mux.HandleFunc("GET /v1/policies/{id}/versions/{n}", s.readClass(s.handleVersion))
	mux.HandleFunc("GET /v1/policies/{id}/diff", s.readClass(s.handleDiff))
	mux.HandleFunc("GET /v1/policies/{id}/edges", s.readClass(s.handleEdges))
	mux.HandleFunc("GET /v1/policies/{id}/vague", s.readClass(s.handleVague))
	mux.HandleFunc("POST /v1/policies/{id}/query", s.solverClass(s.handleQuery))
	mux.HandleFunc("POST /v1/policies/{id}/verify-batch", s.solverClass(s.handleVerifyBatch))
	mux.HandleFunc("POST /v1/policies/{id}/check", s.solverClass(s.handleCheck))
	mux.HandleFunc("POST /v1/policies/{id}/explore", s.solverClass(s.handleExplore))
	mux.HandleFunc("GET /v1/policies/{id}/report", s.readClass(s.handleReport))
	mux.HandleFunc("GET /v1/policies/{id}/dot", s.readClass(s.handleDOT))
	mux.HandleFunc("POST /v1/solve", s.solverClass(s.handleSolve))
	mux.HandleFunc("GET /v1/corpus/stats", s.solverClass(s.handleCorpusStats))
	mux.HandleFunc("POST /v1/corpus/query", s.solverClass(s.handleCorpusQuery))
	return s.withMiddleware(mux)
}

// limiterExempt reports whether the global concurrency limiter skips this
// path: health checks and observability scrapes must keep working on a
// saturated server, or the overload would blind the operator and make the
// load balancer drain instances for the wrong reason.
func limiterExempt(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		strings.HasPrefix(path, "/debug/") || strings.HasPrefix(path, "/v1/replicate/")
}

func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.sem != nil && !limiterExempt(r.URL.Path) {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				writeError(w, http.StatusServiceUnavailable, "server at capacity")
				return
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		func() {
			// Panic containment: one crashing handler must never take the
			// process (and every other in-flight request) down with it.
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				s.pipeline.Obs().Counter("quagmire_http_panics_total").Inc()
				if s.logger != nil {
					s.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, "internal server error")
				}
			}()
			next.ServeHTTP(rec, r)
		}()
		reg := s.pipeline.Obs()
		reg.Counter("quagmire_http_requests_total", "code", strconv.Itoa(rec.status)).Inc()
		reg.Histogram("quagmire_http_request_seconds", obs.TimeBuckets).ObserveSince(start)
		if s.logger != nil {
			s.logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Millisecond))
		}
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.pipeline.Obs().WritePrometheus(w)
}

// statusRecorder captures the response code for logging/metrics and
// whether anything was written yet — the panic handler can only
// substitute a 500 while the response is still unstarted.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Flusher, deadline control) through the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// checkJSONContentType enforces application/json on bodied requests. A
// missing Content-Type is tolerated (curl without -H still works); an
// explicit non-JSON one is a client bug surfaced as 415 rather than a
// confusing JSON parse error.
func checkJSONContentType(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != "application/json" {
		writeError(w, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want application/json)", ct)
		return false
	}
	return true
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if !checkJSONContentType(w, r) {
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", MaxBodyBytes)
			return false
		}
		if errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "empty request body")
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	// Drain whatever trails the decoded value (bounded by MaxBytesReader)
	// so the keep-alive connection is reusable.
	_, _ = io.Copy(io.Discard, r.Body)
	return true
}

// healthResponse is the GET /healthz payload: overall status plus the
// store's self-report (backend kind, record counts, WAL size, writability
// probe) and the quarantined-policy count. A store that cannot accept
// writes makes the whole server degraded with a 503 — a load balancer
// should drain it. Quarantined policies also report "degraded" but keep
// the 200: every healthy policy still serves, and the corrupt payload is
// in the store, so draining the instance would not help (its replacement
// would quarantine the same policy).
type healthResponse struct {
	Status      string       `json:"status"`
	Policies    int          `json:"policies"`
	Quarantined int          `json:"quarantined,omitempty"`
	Store       store.Health `json:"store"`
	// Replica reports replication status (lag, connection state) on a
	// follower; absent on a primary.
	Replica any `json:"replica,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	q := int(s.pipeline.Obs().Gauge(metricQuarantined).Value())
	resp := healthResponse{Status: "ok", Policies: h.Policies, Quarantined: q, Store: h}
	if s.replica != nil && s.replica.Status != nil {
		resp.Replica = s.replica.Status()
	}
	code := http.StatusOK
	switch {
	case !h.OK():
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	case q > 0:
		resp.Status = "degraded"
	}
	writeJSON(w, code, resp)
}

// createPolicyRequest is the POST /v1/policies body.
type createPolicyRequest struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// policyResponse is the common policy summary payload. Quarantined marks
// a policy whose stored payload failed to decode: metadata and stats
// still render (they come from the store's version metadata), but the
// analysis endpoints answer 503 until it is repaired.
type policyResponse struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Company     string    `json:"company"`
	Created     time.Time `json:"created"`
	Updated     time.Time `json:"updated"`
	Versions    int       `json:"versions"`
	Nodes       int       `json:"nodes"`
	Edges       int       `json:"edges"`
	Entities    int       `json:"entities"`
	DataTypes   int       `json:"data_types"`
	Practices   int       `json:"practices"`
	Quarantined bool      `json:"quarantined,omitempty"`
}

// policyStatsJSON renders policy metadata plus stored version stats —
// the form that needs no decoded analysis, so listing a corpus never
// forces engine builds.
func policyStatsJSON(p store.Policy, st store.VersionStats) policyResponse {
	return policyResponse{
		ID: p.ID, Name: p.Name, Company: p.Company,
		Created: p.Created, Updated: p.Updated, Versions: p.Versions,
		Nodes: st.Nodes, Edges: st.Edges, Entities: st.Entities,
		DataTypes: st.DataTypes, Practices: st.Practices,
	}
}

// policyJSON renders policy metadata plus the latest analysis's stats.
// Identical to policyStatsJSON over versionStats(a) — the stored stats
// were computed from the same analysis — so lazy and eager recovery
// render byte-identical listings.
func policyJSON(p store.Policy, a *core.Analysis) policyResponse {
	return policyStatsJSON(p, versionStats(a))
}

// cellPolicyJSON renders one policy from whatever its cell has: the built
// analysis when available, the stored stats (never a forced build) when
// cold, and the stored stats plus the quarantined marker when poisoned.
func cellPolicyJSON(p store.Policy, cell *engineCell) policyResponse {
	a, qerr := cell.peek()
	if a != nil {
		return policyJSON(p, a)
	}
	resp := policyStatsJSON(p, cell.stats)
	resp.Quarantined = qerr != nil
	return resp
}

// versionStats pins an analysis's shape into store metadata.
func versionStats(a *core.Analysis) store.VersionStats {
	st := a.Stats()
	return store.VersionStats{
		Nodes: st.Nodes, Edges: st.Edges, Entities: st.Entities,
		DataTypes: st.DataTypes,
		Segments:  len(a.Extraction.Segments),
		Practices: len(a.Extraction.Practices),
	}
}

func (s *Server) handleCreatePolicy(w http.ResponseWriter, r *http.Request) {
	var req createPolicyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "text is required")
		return
	}
	a, err := s.pipeline.Analyze(r.Context(), req.Text)
	if err != nil {
		s.writeComputeError(w, r, "analysis failed", err)
		return
	}
	payload, err := core.EncodeAnalysis(a)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode failed: %v", err)
		return
	}
	v := store.Version{
		VersionMeta: store.VersionMeta{Company: a.Extraction.Company, Stats: versionStats(a)},
		Payload:     payload,
	}
	s.mu.Lock()
	pol, err := s.store.Create(req.Name, v)
	if err == nil {
		s.live[pol.ID] = newReadyCell(pol.ID, pol.Versions, a)
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store rejected policy: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, policyJSON(pol, a))
}

// pageParams parses ?offset=&limit= (both optional, limit 0 = all).
// Returns ok=false with the 400 already written on malformed input.
func pageParams(w http.ResponseWriter, r *http.Request) (offset, limit int, ok bool) {
	parse := func(name string) (int, bool) {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return 0, true
		}
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid %s %q (want a non-negative integer)", name, raw)
			return 0, false
		}
		return n, true
	}
	if offset, ok = parse("offset"); !ok {
		return 0, 0, false
	}
	if limit, ok = parse("limit"); !ok {
		return 0, 0, false
	}
	return offset, limit, true
}

// handleListPolicies lists the corpus in deterministic store order with
// optional ?offset=&limit= pagination; X-Total-Count always carries the
// full corpus size. Only the (metadata, cell) snapshot happens under the
// read lock — response rendering, which at corpus scale dwarfs the
// snapshot, runs outside it so a big list never stalls writers.
func (s *Server) handleListPolicies(w http.ResponseWriter, r *http.Request) {
	offset, limit, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, err := s.snapshotCorpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store list failed: %v", err)
		return
	}
	total := len(items)
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < total {
		end = offset + limit
	}
	out := make([]policyResponse, 0, end-offset)
	for _, it := range items[offset:end] {
		out = append(out, cellPolicyJSON(it.meta, it.cell))
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	writeJSON(w, http.StatusOK, out)
}

// policySnapshot is a consistent read of one policy: store metadata plus
// the live analysis and the version count it was decoded from.
type policySnapshot struct {
	meta     store.Policy
	version  int
	analysis *core.Analysis
}

// lookupCell finds the (metadata, cell) pair under the read lock — the
// consistent unit every per-policy handler starts from — without
// triggering an engine build. Writes the 404 itself when absent.
func (s *Server) lookupCell(w http.ResponseWriter, r *http.Request) (store.Policy, *engineCell, bool) {
	id := r.PathValue("id")
	s.mu.RLock()
	cell := s.live[id]
	var meta store.Policy
	var err error
	if cell != nil {
		meta, err = s.store.Get(id)
	}
	s.mu.RUnlock()
	if cell == nil || err != nil {
		writeError(w, http.StatusNotFound, "policy %q not found", id)
		return store.Policy{}, nil, false
	}
	return meta, cell, true
}

// lookup returns a consistent snapshot for handlers that need the
// analysis, building the cell on first demand (the lazy-recovery cold
// path). Handlers work on the snapshot only: a concurrent update installs
// a new cell, but never mutates a published analysis, so snapshot reads
// are race-free without holding the lock. A quarantined policy answers
// 503 with the decode failure as the reason.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (policySnapshot, bool) {
	meta, cell, ok := s.lookupCell(w, r)
	if !ok {
		return policySnapshot{}, false
	}
	a, err := cell.get(s, "query")
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return policySnapshot{}, false
	}
	return policySnapshot{meta: meta, version: cell.version, analysis: a}, true
}

// handleGetPolicy serves metadata + stats; like the list, it never forces
// a cold cell to build and renders quarantined policies with the marker.
func (s *Server) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	meta, cell, ok := s.lookupCell(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, cellPolicyJSON(meta, cell))
}

// updatePolicyRequest is the PUT /v1/policies/{id} body.
type updatePolicyRequest struct {
	Text string `json:"text"`
}

// updatePolicyResponse reports the incremental update.
type updatePolicyResponse struct {
	Policy          policyResponse `json:"policy"`
	SegmentsKept    int            `json:"segments_kept"`
	SegmentsAdded   int            `json:"segments_added"`
	SegmentsRemoved int            `json:"segments_removed"`
	EdgesAdded      int            `json:"edges_added"`
	EdgesRemoved    int            `json:"edges_removed"`
	NewTerms        int            `json:"new_terms"`
}

func (s *Server) handleUpdatePolicy(w http.ResponseWriter, r *http.Request) {
	meta, cell, ok := s.lookupCell(w, r)
	if !ok {
		return
	}
	var req updatePolicyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "text is required")
		return
	}
	// Re-analysis runs outside the lock: Update never mutates the previous
	// analysis, so concurrent readers keep querying the old version while
	// the new one is built. The lock is held only for the store append and
	// live-map swap; the store's compare-and-swap (against the version this
	// update was computed from) rejects concurrent updates rather than
	// silently dropping edits.
	//
	// PUT is also the repair path for a quarantined policy: with no
	// decodable previous analysis to diff against, the text is re-analyzed
	// from scratch (diff stats zero) and a healthy cell replaces the
	// poisoned one.
	prev, qerr := cell.get(s, "query")
	var (
		a    *core.Analysis
		diff segment.Diff
		st   kg.UpdateStats
		err  error
	)
	if qerr != nil {
		a, err = s.pipeline.Analyze(r.Context(), req.Text)
	} else {
		a, diff, st, err = s.pipeline.Update(r.Context(), prev, req.Text)
	}
	if err != nil {
		s.writeComputeError(w, r, "update failed", err)
		return
	}
	payload, err := core.EncodeAnalysis(a)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode failed: %v", err)
		return
	}
	v := store.Version{
		VersionMeta: store.VersionMeta{
			Company: a.Extraction.Company,
			Stats:   versionStats(a),
			Diff: store.DiffStats{
				SegmentsKept:    len(diff.Kept),
				SegmentsAdded:   len(diff.Added),
				SegmentsRemoved: len(diff.Removed),
				EdgesAdded:      st.EdgesAdded,
				EdgesRemoved:    st.EdgesRemoved,
				NewTerms:        st.NewTerms,
			},
		},
		Payload: payload,
	}
	s.mu.Lock()
	pol, serr := s.store.Append(meta.ID, cell.version, v)
	if serr == nil {
		s.live[pol.ID] = newReadyCell(pol.ID, pol.Versions, a)
	}
	s.mu.Unlock()
	switch {
	case errors.Is(serr, store.ErrConflict):
		writeError(w, http.StatusConflict, "policy %q was updated concurrently; retry", meta.ID)
		return
	case errors.Is(serr, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "policy %q not found", meta.ID)
		return
	case serr != nil:
		writeError(w, http.StatusInternalServerError, "store rejected update: %v", serr)
		return
	}
	if qerr != nil {
		// The poisoned cell is gone; the policy is healthy again.
		s.pipeline.Obs().Gauge(metricQuarantined).Add(-1)
		if s.logger != nil {
			s.logger.Printf("server: policy %s repaired by update (version %d)", pol.ID, pol.Versions)
		}
	}
	writeJSON(w, http.StatusOK, updatePolicyResponse{
		Policy:          policyJSON(pol, a),
		SegmentsKept:    len(diff.Kept),
		SegmentsAdded:   len(diff.Added),
		SegmentsRemoved: len(diff.Removed),
		EdgesAdded:      st.EdgesAdded,
		EdgesRemoved:    st.EdgesRemoved,
		NewTerms:        st.NewTerms,
	})
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", q)
			return
		}
		limit = n
	}
	edges := e.analysis.KG.ED.Edges()
	if limit > 0 && limit < len(edges) {
		edges = edges[:limit]
	}
	type edgeJSON struct {
		Text       string `json:"text"`
		Condition  string `json:"condition,omitempty"`
		Permission string `json:"permission,omitempty"`
		Other      string `json:"other,omitempty"`
	}
	out := make([]edgeJSON, len(edges))
	for i, ed := range edges {
		out[i] = edgeJSON{Text: ed.String(), Condition: ed.Condition, Permission: ed.Permission, Other: ed.Other}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleVague(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	counts := map[string]int{}
	for _, p := range e.analysis.Extraction.Practices {
		for _, v := range p.VagueTerms {
			counts[v]++
		}
	}
	type vagueJSON struct {
		Term        string `json:"term"`
		Occurrences int    `json:"occurrences"`
	}
	out := make([]vagueJSON, 0, len(counts))
	for term, n := range counts {
		out = append(out, vagueJSON{Term: term, Occurrences: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		return out[i].Term < out[j].Term
	})
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the POST /v1/policies/{id}/query body.
type queryRequest struct {
	Question      string `json:"question"`
	IncludeScript bool   `json:"include_script,omitempty"`
}

// queryResponse is the verification result payload.
type queryResponse struct {
	Verdict       query.Verdict     `json:"verdict"`
	ConditionalOn []string          `json:"conditional_on,omitempty"`
	Placeholders  []string          `json:"placeholders,omitempty"`
	Translations  map[string]string `json:"translations,omitempty"`
	MatchedEdges  []string          `json:"matched_edges,omitempty"`
	FormulaSize   int               `json:"formula_size"`
	Script        string            `json:"script,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, "question is required")
		return
	}
	res, err := e.analysis.Engine.Ask(r.Context(), req.Question)
	if err != nil {
		s.writeComputeError(w, r, "query failed", err)
		return
	}
	resp := queryResponse{
		Verdict:       res.Verdict,
		ConditionalOn: res.ConditionalOn,
		Placeholders:  res.Placeholders,
		Translations:  res.Translations,
		MatchedEdges:  res.MatchedEdges,
		FormulaSize:   res.FormulaSize,
	}
	if req.IncludeScript {
		resp.Script = res.Script
	}
	writeJSON(w, http.StatusOK, resp)
}

// verifyBatchRequest is the POST /v1/policies/{id}/verify-batch body.
type verifyBatchRequest struct {
	Questions []string `json:"questions"`
}

// batchItemResponse is one query's outcome within a batch; exactly one of
// Error or the result fields is populated.
type batchItemResponse struct {
	Question      string        `json:"question"`
	Verdict       query.Verdict `json:"verdict,omitempty"`
	ConditionalOn []string      `json:"conditional_on,omitempty"`
	Placeholders  []string      `json:"placeholders,omitempty"`
	MatchedEdges  []string      `json:"matched_edges,omitempty"`
	Error         string        `json:"error,omitempty"`
}

// verifyBatchResponse reports the whole batch plus the pipeline's shared
// SMT result cache counters after the run.
type verifyBatchResponse struct {
	Results  []batchItemResponse `json:"results"`
	SMTCache smt.CacheStats      `json:"smt_cache"`
}

// MaxBatchQuestions caps one verify-batch request.
const MaxBatchQuestions = 64

func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req verifyBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Questions) == 0 {
		writeError(w, http.StatusBadRequest, "questions is required")
		return
	}
	if len(req.Questions) > MaxBatchQuestions {
		writeError(w, http.StatusBadRequest, "too many questions: %d (max %d)", len(req.Questions), MaxBatchQuestions)
		return
	}
	for i, q := range req.Questions {
		if q == "" {
			writeError(w, http.StatusBadRequest, "questions[%d] is empty", i)
			return
		}
	}
	items, err := e.analysis.Engine.AskBatch(r.Context(), req.Questions)
	if err != nil {
		s.writeComputeError(w, r, "batch verification failed", err)
		return
	}
	resp := verifyBatchResponse{
		Results:  make([]batchItemResponse, len(items)),
		SMTCache: s.pipeline.SMTCacheStats(),
	}
	for i, it := range items {
		out := batchItemResponse{Question: it.Query}
		if it.Err != nil {
			out.Error = it.Err.Error()
		} else {
			out.Verdict = it.Result.Verdict
			out.ConditionalOn = it.Result.ConditionalOn
			out.Placeholders = it.Result.Placeholders
			out.MatchedEdges = it.Result.MatchedEdges
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// exploreRequest is the POST /v1/policies/{id}/explore body.
type exploreRequest struct {
	Question string `json:"question"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req exploreRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, "question is required")
		return
	}
	exp, err := e.analysis.Engine.Explore(r.Context(), req.Question)
	if err != nil {
		s.writeComputeError(w, r, "exploration failed", err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	md := report.Render(e.analysis, report.Options{IncludeHierarchy: r.URL.Query().Get("hierarchy") == "1"})
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	_, _ = io.WriteString(w, md)
}

func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var out string
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "graph":
		out = e.analysis.KG.ED.DOT(e.meta.Company + " practices")
	case "data":
		out = e.analysis.KG.DataH.DOT(e.meta.Company + " data hierarchy")
	case "entity":
		out = e.analysis.KG.EntityH.DOT(e.meta.Company + " entity hierarchy")
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q (graph|data|entity)", kind)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	_, _ = io.WriteString(w, out)
}

// solveRequest is the POST /v1/solve body.
type solveRequest struct {
	Script string `json:"script"`
}

// solveResponse is one check-sat result.
type solveResponse struct {
	Status       string   `json:"status"`
	Reason       string   `json:"reason,omitempty"`
	Placeholders []string `json:"placeholders,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Script == "" {
		writeError(w, http.StatusBadRequest, "script is required")
		return
	}
	results, err := smt.RunScriptCtx(r.Context(), req.Script, s.limits)
	if err != nil {
		s.writeComputeError(w, r, "solve failed", err)
		return
	}
	out := make([]solveResponse, len(results))
	for i, res := range results {
		out[i] = solveResponse{Status: res.Status.String(), Reason: res.Reason, Placeholders: res.Placeholders}
	}
	writeJSON(w, http.StatusOK, out)
}
