package server

// End-to-end HTTP conformance suite: an httptest-driven walk of every
// registered route — create → update → versions → diff → query → report —
// asserting status codes, content types and JSON shapes, so handler
// regressions fail here instead of in the CLI. Runs in CI's dedicated
// server e2e leg (-run 'E2E|Overload|Drain' -race -count=2).

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

// wantJSON asserts an application/json content type on resp.
func wantJSON(t *testing.T, resp *http.Response, what string) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s content type = %q, want application/json", what, ct)
	}
}

// getRaw fetches a path and returns status, content type and body.
func getRaw(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestE2EConformance walks the whole API surface in dependency order
// against one server instance.
func TestE2EConformance(t *testing.T) {
	ts := newTestServer(t)

	// healthz: ok status and the store self-report.
	var health struct {
		Status   string         `json:"status"`
		Policies int            `json:"policies"`
		Store    map[string]any `json:"store"`
	}
	resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	wantJSON(t, resp, "healthz")
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}
	if health.Store["backend"] != "memory" {
		t.Errorf("store backend = %v, want memory", health.Store["backend"])
	}

	// Create: 201, full policy shape.
	var created struct {
		ID        string `json:"id"`
		Name      string `json:"name"`
		Company   string `json:"company"`
		Versions  int    `json:"versions"`
		Nodes     int    `json:"nodes"`
		Edges     int    `json:"edges"`
		Entities  int    `json:"entities"`
		DataTypes int    `json:"data_types"`
		Practices int    `json:"practices"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies",
		map[string]string{"name": "mini", "text": corpus.Mini()}, &created)
	wantJSON(t, resp, "create")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d %+v", resp.StatusCode, created)
	}
	if created.ID == "" || created.Company != "Acme" || created.Versions != 1 ||
		created.Nodes == 0 || created.Edges == 0 || created.Practices == 0 {
		t.Fatalf("create shape: %+v", created)
	}
	id := created.ID

	// List: one element, same shape.
	var list []map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies", nil, &list)
	wantJSON(t, resp, "list")
	if resp.StatusCode != http.StatusOK || len(list) != 1 || list[0]["id"] != id {
		t.Fatalf("list = %d %v", resp.StatusCode, list)
	}

	// Get: mirrors the created payload.
	var got map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id, nil, &got)
	wantJSON(t, resp, "get")
	if resp.StatusCode != http.StatusOK || got["name"] != "mini" {
		t.Fatalf("get = %d %v", resp.StatusCode, got)
	}

	// Update: version 2 with diff accounting.
	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and sleep patterns automatically.", 1)
	var updated struct {
		Policy        map[string]any `json:"policy"`
		SegmentsKept  int            `json:"segments_kept"`
		SegmentsAdded int            `json:"segments_added"`
		EdgesAdded    int            `json:"edges_added"`
	}
	resp = doJSON(t, "PUT", ts.URL+"/v1/policies/"+id, map[string]string{"text": edited}, &updated)
	wantJSON(t, resp, "update")
	if resp.StatusCode != http.StatusOK || updated.Policy["versions"].(float64) != 2 {
		t.Fatalf("update = %d %+v", resp.StatusCode, updated)
	}
	if updated.SegmentsAdded != 1 || updated.SegmentsKept == 0 {
		t.Errorf("update accounting: %+v", updated)
	}

	// Versions: two metadata entries, ordered, with stats.
	var versions []struct {
		N       int            `json:"n"`
		Company string         `json:"company"`
		Stats   map[string]any `json:"stats"`
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/versions", nil, &versions)
	wantJSON(t, resp, "versions")
	if resp.StatusCode != http.StatusOK || len(versions) != 2 {
		t.Fatalf("versions = %d %+v", resp.StatusCode, versions)
	}
	if versions[0].N != 1 || versions[1].N != 2 || versions[0].Company != "Acme" {
		t.Errorf("version metadata: %+v", versions)
	}

	// Single version.
	var one map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/versions/2", nil, &one)
	wantJSON(t, resp, "version")
	if resp.StatusCode != http.StatusOK || one["n"].(float64) != 2 {
		t.Fatalf("version 2 = %d %v", resp.StatusCode, one)
	}

	// Diff between the two versions sees the added practice.
	var diff struct {
		From    int `json:"from"`
		To      int `json:"to"`
		Changes []struct {
			Kind     string `json:"kind"`
			DataType string `json:"data_type"`
		} `json:"changes"`
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/diff?from=1&to=2", nil, &diff)
	wantJSON(t, resp, "diff")
	if resp.StatusCode != http.StatusOK || diff.From != 1 || diff.To != 2 {
		t.Fatalf("diff = %d %+v", resp.StatusCode, diff)
	}
	added := false
	for _, c := range diff.Changes {
		added = added || c.Kind == "added"
	}
	if !added {
		t.Errorf("diff missed the added practice: %+v", diff.Changes)
	}

	// Edges and vague terms.
	var edges []map[string]any
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/edges?limit=2", nil, &edges)
	wantJSON(t, resp, "edges")
	if resp.StatusCode != http.StatusOK || len(edges) != 2 || edges[0]["text"] == "" {
		t.Fatalf("edges = %d %v", resp.StatusCode, edges)
	}
	var vague []struct {
		Term        string `json:"term"`
		Occurrences int    `json:"occurrences"`
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/policies/"+id+"/vague", nil, &vague)
	wantJSON(t, resp, "vague")
	if resp.StatusCode != http.StatusOK || len(vague) == 0 || vague[0].Occurrences == 0 {
		t.Fatalf("vague = %d %+v", resp.StatusCode, vague)
	}

	// Query: verdict plus formula size.
	var q struct {
		Verdict     string `json:"verdict"`
		FormulaSize int    `json:"formula_size"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/query",
		map[string]string{"question": "Does Acme share my email address with advertising partners?"}, &q)
	wantJSON(t, resp, "query")
	if resp.StatusCode != http.StatusOK || q.Verdict != "VALID" || q.FormulaSize == 0 {
		t.Fatalf("query = %d %+v", resp.StatusCode, q)
	}

	// Verify-batch: per-item results and cache stats.
	var batch struct {
		Results []struct {
			Question string `json:"question"`
			Verdict  string `json:"verdict"`
		} `json:"results"`
		SMTCache map[string]any `json:"smt_cache"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/verify-batch",
		map[string]any{"questions": []string{
			"Does Acme share my email address with advertising partners?",
			"Does Acme sell my personal information?",
		}}, &batch)
	wantJSON(t, resp, "verify-batch")
	if resp.StatusCode != http.StatusOK || len(batch.Results) != 2 {
		t.Fatalf("verify-batch = %d %+v", resp.StatusCode, batch)
	}
	if batch.Results[0].Verdict != "VALID" || batch.Results[1].Verdict != "INVALID" {
		t.Errorf("batch verdicts: %+v", batch.Results)
	}

	// Explore: scenario enumeration.
	var explore struct {
		Scenarios []map[string]any `json:"scenarios"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/explore",
		map[string]string{"question": "Does Acme share my usage data with service providers?"}, &explore)
	wantJSON(t, resp, "explore")
	if resp.StatusCode != http.StatusOK || len(explore.Scenarios) < 2 {
		t.Fatalf("explore = %d %+v", resp.StatusCode, explore)
	}

	// Report: markdown, not JSON.
	code, ct, body := getRaw(t, ts.URL+"/v1/policies/"+id+"/report")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/markdown") || !strings.Contains(body, "# Privacy Policy Audit") {
		t.Fatalf("report = %d %q", code, ct)
	}

	// DOT: graphviz content type for every kind.
	for _, kind := range []string{"graph", "data", "entity"} {
		code, ct, body = getRaw(t, ts.URL+"/v1/policies/"+id+"/dot?kind="+kind)
		if code != http.StatusOK || !strings.HasPrefix(ct, "text/vnd.graphviz") || !strings.Contains(body, "digraph") {
			t.Fatalf("dot kind=%s = %d %q", kind, code, ct)
		}
	}

	// Solve: raw SMT-LIB round trip.
	var solved []map[string]any
	resp = doJSON(t, "POST", ts.URL+"/v1/solve",
		map[string]string{"script": "(declare-fun p () Bool)\n(assert p)\n(check-sat)"}, &solved)
	wantJSON(t, resp, "solve")
	if resp.StatusCode != http.StatusOK || len(solved) != 1 || solved[0]["status"] != "sat" {
		t.Fatalf("solve = %d %v", resp.StatusCode, solved)
	}

	// Metrics: Prometheus text including the new lifecycle collectors.
	code, ct, body = getRaw(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics = %d %q", code, ct)
	}
	for _, want := range []string{
		"quagmire_http_requests_total",
		"quagmire_http_solver_inflight",
		"quagmire_smt_solve_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Debug vars is JSON.
	code, ct, _ = getRaw(t, ts.URL+"/debug/vars")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("debug/vars = %d %q", code, ct)
	}
}

// TestE2EErrorContract pins status codes for the failure surface of every
// route family: missing resources, malformed versions, bad methods.
func TestE2EErrorContract(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/v1/policies/ghost", nil, http.StatusNotFound},
		{"GET", "/v1/policies/ghost/versions", nil, http.StatusNotFound},
		{"GET", "/v1/policies/" + id + "/versions/99", nil, http.StatusNotFound},
		{"GET", "/v1/policies/" + id + "/versions/zero", nil, http.StatusBadRequest},
		{"GET", "/v1/policies/" + id + "/diff?from=1&to=99", nil, http.StatusNotFound},
		{"GET", "/v1/policies/" + id + "/diff?from=x&to=1", nil, http.StatusBadRequest},
		{"GET", "/v1/policies/" + id + "/dot?kind=bogus", nil, http.StatusBadRequest},
		{"GET", "/v1/policies/" + id + "/edges?limit=nan", nil, http.StatusBadRequest},
		{"POST", "/v1/policies/" + id + "/query", map[string]string{}, http.StatusBadRequest},
		{"POST", "/v1/policies/" + id + "/explore", map[string]string{}, http.StatusBadRequest},
		{"POST", "/v1/policies/" + id + "/verify-batch", map[string]any{"questions": []string{}}, http.StatusBadRequest},
		{"PUT", "/v1/policies/" + id, map[string]string{}, http.StatusBadRequest},
		{"DELETE", "/v1/policies/" + id, nil, http.StatusMethodNotAllowed},
		{"POST", "/v1/solve", map[string]string{}, http.StatusBadRequest},
	}
	for _, c := range cases {
		var out map[string]any
		resp := doJSON(t, c.method, ts.URL+c.path, c.body, &out)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d (%v)", c.method, c.path, resp.StatusCode, c.want, out)
		}
		// 405s come straight from ServeMux (text/plain); everything else
		// must carry the JSON error envelope.
		if resp.StatusCode >= 400 && resp.StatusCode != http.StatusMethodNotAllowed {
			wantJSON(t, resp, c.method+" "+c.path)
			if msg, _ := out["error"].(string); msg == "" {
				t.Errorf("%s %s: empty error envelope", c.method, c.path)
			}
		}
	}
}

// TestE2EPostBodyHygiene audits every bodied endpoint for the two body
// failure modes: an explicit non-JSON Content-Type must 415 before any
// parsing, and a payload past MaxBodyBytes must 413.
func TestE2EPostBodyHygiene(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	endpoints := []struct{ method, path string }{
		{"POST", "/v1/policies"},
		{"PUT", "/v1/policies/" + id},
		{"POST", "/v1/policies/" + id + "/query"},
		{"POST", "/v1/policies/" + id + "/verify-batch"},
		{"POST", "/v1/policies/" + id + "/explore"},
		{"POST", "/v1/solve"},
	}

	t.Run("UnsupportedMediaType", func(t *testing.T) {
		for _, ep := range endpoints {
			req, err := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(`{"text":"x"}`))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "text/plain")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Errorf("%s %s with text/plain = %d, want 415", ep.method, ep.path, resp.StatusCode)
			}
		}
	})

	t.Run("Oversized", func(t *testing.T) {
		// Valid JSON shape, just too big: the limit must fire during decode.
		huge := `{"pad":"` + strings.Repeat("x", MaxBodyBytes+1) + `"}`
		for _, ep := range endpoints {
			req, err := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(huge))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var out map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Errorf("%s %s oversized = %d, want 413 (%v)", ep.method, ep.path, resp.StatusCode, out)
			}
		}
	})

	t.Run("MissingContentTypeTolerated", func(t *testing.T) {
		// Bare curl-style POST without a Content-Type header still works.
		req, err := http.NewRequest("POST", ts.URL+"/v1/solve",
			strings.NewReader(`{"script":"(declare-fun p () Bool)\n(assert p)\n(check-sat)"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Del("Content-Type")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST /v1/solve without Content-Type = %d, want 200", resp.StatusCode)
		}
	})
}

// TestE2ETrailingGarbageDrained checks that a body with bytes after the
// JSON value still decodes (the remainder is drained for keep-alive) —
// pinning the decodeBody drain behavior.
func TestE2ETrailingGarbageDrained(t *testing.T) {
	ts := newTestServer(t)
	body := `{"script":"(declare-fun p () Bool)\n(assert p)\n(check-sat)"}  trailing`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trailing bytes after JSON = %d, want 200", resp.StatusCode)
	}
}
