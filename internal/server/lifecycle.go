package server

// Request-lifecycle layer: per-endpoint-class deadlines, admission
// control for solver-backed endpoints, and panic containment. The paper's
// headline negative result — SMT verification routinely resource-outs —
// means every solver-backed request is a potentially unbounded
// computation; this file is what keeps one pathological formula from
// pinning the whole process. Deadlines propagate through r.Context() into
// the existing solver cancellation plumbing (CheckSatCtx /
// SolveScriptCachedCtx poll the context inside the instantiation and
// DPLL(T) loops), so an expired request stops burning CPU promptly.

import (
	"context"
	"errors"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// Default per-class request deadlines. Cheap reads touch only in-memory
// snapshots and the store's metadata; solver-class requests run
// extraction, graph builds or SMT solving and get a far larger budget.
const (
	DefaultReadTimeout  = 2 * time.Second
	DefaultSolveTimeout = 30 * time.Second
)

// Timeouts are the per-endpoint-class request deadlines. Zero fields
// select the defaults; negative fields disable the deadline for that
// class (tests and offline batch tooling).
type Timeouts struct {
	// Read bounds cheap read endpoints (list/get/versions/edges/report...).
	Read time.Duration
	// Solve bounds solver-backed and analysis endpoints (query,
	// verify-batch, explore, solve, create, update).
	Solve time.Duration
}

func normalizeTimeout(d, def time.Duration) time.Duration {
	switch {
	case d == 0:
		return def
	case d < 0:
		return 0
	default:
		return d
	}
}

func (t Timeouts) withDefaults() Timeouts {
	t.Read = normalizeTimeout(t.Read, DefaultReadTimeout)
	t.Solve = normalizeTimeout(t.Solve, DefaultSolveTimeout)
	return t
}

// AdmissionConfig bounds concurrent solver-backed requests. A bounded
// semaphore admits up to MaxConcurrent requests; up to MaxQueue more wait
// at most QueueWait for a slot; everything beyond that is shed
// immediately with 429 + Retry-After. Zero fields select defaults;
// MaxConcurrent < 0 disables admission control entirely.
type AdmissionConfig struct {
	// MaxConcurrent is the number of solver-backed requests allowed to run
	// simultaneously. 0 selects max(2, GOMAXPROCS); negative disables.
	MaxConcurrent int
	// MaxQueue is the number of requests allowed to wait for a slot.
	// 0 selects 8×MaxConcurrent; negative means no queue (shed at once).
	MaxQueue int
	// QueueWait is the longest a queued request waits before being shed.
	// 0 selects 2 seconds.
	QueueWait time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = max(2, runtime.GOMAXPROCS(0))
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	return c
}

// admission is the runtime state of the solver-endpoint limiter.
type admission struct {
	cfg      AdmissionConfig
	sem      chan struct{}
	inflight atomic.Int64
	queued   atomic.Int64
	reg      *obs.Registry
}

func newAdmission(cfg AdmissionConfig, reg *obs.Registry) *admission {
	cfg = cfg.withDefaults()
	if cfg.MaxConcurrent < 0 {
		return nil
	}
	reg.SetHelp("quagmire_http_solver_inflight", "Solver-backed requests currently executing.")
	reg.SetHelp("quagmire_http_solver_inflight_peak", "High watermark of concurrently executing solver-backed requests.")
	reg.SetHelp("quagmire_http_solver_queue_depth", "Solver-backed requests currently waiting for an execution slot.")
	reg.SetHelp("quagmire_http_solver_queue_depth_peak", "High watermark of the solver admission queue.")
	reg.SetHelp("quagmire_http_shed_total", "Solver-backed requests shed with 429, by reason.")
	reg.SetHelp("quagmire_http_solver_queue_wait_seconds", "Time admitted requests spent queued for a solver slot.")
	return &admission{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxConcurrent),
		reg: reg,
	}
}

// admit tries to reserve an execution slot for r. On success it returns
// the release func the caller must defer; on failure it has already
// written the 429 (or deadline) response and returns ok=false.
func (a *admission) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case a.sem <- struct{}{}:
		return a.acquired(), true
	default:
	}
	// All slots busy: join the bounded wait queue or shed immediately.
	// Gauges move by deltas (Add is a CAS accumulate), never Set — two
	// concurrent Sets can finish out of order and strand a stale value.
	if n := a.queued.Add(1); int(n) > a.cfg.MaxQueue {
		a.queued.Add(-1)
		a.shed(w, "queue_full")
		return nil, false
	} else {
		a.reg.Gauge("quagmire_http_solver_queue_depth").Add(1)
		a.reg.Gauge("quagmire_http_solver_queue_depth_peak").SetMax(float64(n))
	}
	defer func() {
		a.queued.Add(-1)
		a.reg.Gauge("quagmire_http_solver_queue_depth").Add(-1)
	}()
	start := time.Now()
	timer := time.NewTimer(a.cfg.QueueWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.reg.Histogram("quagmire_http_solver_queue_wait_seconds", obs.TimeBuckets).ObserveSince(start)
		return a.acquired(), true
	case <-timer.C:
		a.shed(w, "timeout")
		return nil, false
	case <-r.Context().Done():
		// The request's own deadline (or the client) gave up while queued.
		a.shed(w, "deadline")
		return nil, false
	}
}

func (a *admission) acquired() func() {
	n := a.inflight.Add(1)
	a.reg.Gauge("quagmire_http_solver_inflight").Add(1)
	a.reg.Gauge("quagmire_http_solver_inflight_peak").SetMax(float64(n))
	return func() {
		<-a.sem
		a.inflight.Add(-1)
		a.reg.Gauge("quagmire_http_solver_inflight").Add(-1)
	}
}

// shed writes the 429 envelope with a Retry-After hint sized to the queue
// wait — by then at least one queued request has either run or been shed,
// so capacity has turned over.
func (a *admission) shed(w http.ResponseWriter, reason string) {
	a.reg.Counter("quagmire_http_shed_total", "reason", reason).Inc()
	retry := int(math.Ceil(a.cfg.QueueWait.Seconds()))
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "solver capacity exhausted (%s); retry later", reason)
}

// timed wraps next with a request deadline that flows through
// r.Context() into the pipeline and solver. d <= 0 disables.
func timed(d time.Duration, next http.HandlerFunc) http.HandlerFunc {
	if d <= 0 {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// readClass wraps a cheap read handler with the read deadline.
func (s *Server) readClass(next http.HandlerFunc) http.HandlerFunc {
	return timed(s.timeouts.Read, next)
}

// analyzeClass wraps the extraction-heavy create/update handlers with the
// solver deadline (analysis runs the LLM + graph build, not the solver,
// but shares its cost profile). These endpoints are not admission
// controlled; the global limiter and body-size cap bound them.
func (s *Server) analyzeClass(next http.HandlerFunc) http.HandlerFunc {
	return timed(s.timeouts.Solve, next)
}

// solverClass wraps a solver-backed handler with the solver deadline and
// admission control. The deadline covers queue wait too: a request that
// spends its whole budget queued is shed, never run.
func (s *Server) solverClass(next http.HandlerFunc) http.HandlerFunc {
	h := func(w http.ResponseWriter, r *http.Request) {
		if s.adm != nil {
			release, ok := s.adm.admit(w, r)
			if !ok {
				return
			}
			defer release()
		}
		if hook := s.testHookSolverAdmitted; hook != nil {
			hook(r)
		}
		next(w, r)
	}
	return timed(s.timeouts.Solve, h)
}

// writeComputeError maps a pipeline/solver failure onto the error
// envelope. A request whose deadline elapsed gets 504 so callers can tell
// "too slow under current limits — retry with more budget" apart from
// "semantically invalid" (422).
func (s *Server) writeComputeError(w http.ResponseWriter, r *http.Request, what string, err error) {
	if r.Context().Err() != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		s.pipeline.Obs().Counter("quagmire_http_deadline_exceeded_total").Inc()
		writeError(w, http.StatusGatewayTimeout, "%s: request deadline exceeded", what)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "%s: %v", what, err)
}
