package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/scenario"
)

const checkSuiteSrc = `suite "acme-api" {
  use ccpa-no-sale(controller = "Acme")
  scenario "collection disclosed" {
    ask "Does Acme collect my device identifiers?"
    expect VALID
  }
}`

func TestCheckEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	var out struct {
		PolicyID string          `json:"policy_id"`
		Version  int             `json:"version"`
		Report   scenario.Report `json:"report"`
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
		map[string]any{"suite": checkSuiteSrc}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d", resp.StatusCode)
	}
	if out.PolicyID != id || out.Version != 1 {
		t.Errorf("coordinates = %s@%d", out.PolicyID, out.Version)
	}
	if !out.Report.OK || out.Report.Totals.Passed != 3 {
		t.Errorf("report = %+v", out.Report)
	}
	if out.Report.Format != scenario.ReportFormat {
		t.Errorf("format = %q", out.Report.Format)
	}
	if len(out.Report.Suites) != 1 || out.Report.Suites[0].Policy != "store:"+id+"@1" {
		t.Errorf("suites = %+v", out.Report.Suites)
	}
}

func TestCheckEndpointFailureIsAResult(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	var out struct {
		Report scenario.Report `json:"report"`
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
		map[string]any{"suite": `suite "red" {
  scenario "wrong" { ask "Does Acme sell my personal information?" expect VALID }
}`}, &out)
	// A verdict mismatch is a 200 with ok=false, not a transport error.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d", resp.StatusCode)
	}
	if out.Report.OK || out.Report.Totals.Failed != 1 {
		t.Errorf("report = %+v", out.Report)
	}
}

func TestCheckEndpointJUnit(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
		map[string]any{"suite": checkSuiteSrc, "format": "junit"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/xml") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`<testsuites name="quagmire scenarios"`, `tests="3"`, `failures="0"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("junit body missing %q:\n%s", want, body)
		}
	}
}

func TestCheckEndpointVersionPinning(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	// Version 2 drops the email-sharing sentence, flipping that verdict.
	edited := strings.Replace(corpus.Mini(),
		"We share email addresses with advertising partners.", "", 1)
	if edited == corpus.Mini() {
		t.Fatal("fixture sentence not found in Mini corpus")
	}
	var upd map[string]any
	resp := doJSON(t, "PUT", ts.URL+"/v1/policies/"+id, map[string]string{"text": edited}, &upd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d %v", resp.StatusCode, upd)
	}

	suite := `suite "email" {
  scenario "email reaches advertisers" {
    ask "Does Acme share my email address with advertising partners?"
    expect VALID
  }
}`
	var v1 struct {
		Version int             `json:"version"`
		Report  scenario.Report `json:"report"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
		map[string]any{"suite": suite, "version": 1}, &v1)
	if resp.StatusCode != http.StatusOK || v1.Version != 1 {
		t.Fatalf("v1 check = %d %+v", resp.StatusCode, v1)
	}
	if !v1.Report.OK {
		t.Errorf("version 1 should still pass: %+v", v1.Report)
	}
	var v2 struct {
		Version int             `json:"version"`
		Report  scenario.Report `json:"report"`
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check",
		map[string]any{"suite": suite}, &v2)
	if resp.StatusCode != http.StatusOK || v2.Version != 2 {
		t.Fatalf("v2 check = %d %+v", resp.StatusCode, v2)
	}
	if v2.Report.OK {
		t.Errorf("version 2 dropped the disclosure, check should fail: %+v", v2.Report)
	}
}

func TestCheckEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	id := createPolicy(t, ts)["id"].(string)

	cases := []struct {
		body   map[string]any
		status int
	}{
		{map[string]any{}, http.StatusBadRequest},                                         // no suite
		{map[string]any{"suite": `suite "b" {`}, http.StatusBadRequest},                   // parse error
		{map[string]any{"suite": `suite "b" { policy "x" }`}, http.StatusBadRequest},      // no scenarios
		{map[string]any{"suite": checkSuiteSrc, "format": "yaml"}, http.StatusBadRequest}, // bad format
		{map[string]any{"suite": checkSuiteSrc, "version": 99}, http.StatusNotFound},      // no such version
		{map[string]any{"suite": `suite "b" { use nope }`}, http.StatusBadRequest},        // unknown pack
	}
	for _, c := range cases {
		resp := doJSON(t, "POST", ts.URL+"/v1/policies/"+id+"/check", c.body, nil)
		if resp.StatusCode != c.status {
			t.Errorf("check(%v) = %d, want %d", c.body, resp.StatusCode, c.status)
		}
	}
	// Unknown policy is 404.
	resp := doJSON(t, "POST", ts.URL+"/v1/policies/nope/check", map[string]any{"suite": checkSuiteSrc}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown policy = %d", resp.StatusCode)
	}
}
