package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// mkStoreVersion pins an analysis into a store version the same way the
// create handler does.
func mkStoreVersion(a *core.Analysis, payload []byte) store.Version {
	return store.Version{
		VersionMeta: store.VersionMeta{Company: a.Extraction.Company, Stats: versionStats(a)},
		Payload:     payload,
	}
}

// BenchmarkCorpusQuery measures a full cross-policy fan-out through the
// HTTP stack: one POST /v1/corpus/query sweeping every policy and
// streaming NDJSON verdicts. Corpus size via
// QUAGMIRE_CORPUS_BENCH_POLICIES (default 6 to keep CI fast).
func BenchmarkCorpusQuery(b *testing.B) {
	n := 6
	if s := os.Getenv("QUAGMIRE_CORPUS_BENCH_POLICIES"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
			b.Fatalf("bad QUAGMIRE_CORPUS_BENCH_POLICIES %q", s)
		}
	}
	p, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Options{Pipeline: p})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		text := corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("Bench%d", i), Seed: int64(i + 1),
			PracticeStatements: 8, DataRichness: 12, EntityRichness: 12,
		})
		a, err := p.Analyze(ctx, text)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := core.EncodeAnalysis(a)
		if err != nil {
			b.Fatal(err)
		}
		pol, err := s.store.Create(fmt.Sprintf("bench-%d", i), mkStoreVersion(a, payload))
		if err != nil {
			b.Fatal(err)
		}
		s.live[pol.ID] = newReadyCell(pol.ID, pol.Versions, a)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{"query": "Do you share email addresses with advertising partners?"})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/corpus/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		lines := 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			lines++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if lines != n+1 { // n results + summary
			b.Fatalf("stream had %d lines, want %d", lines, n+1)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "policies/s")
}
