package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/baseline"
	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

// DomainRow reports the cross-domain generalization experiment (E7) for
// one policy: full-pipeline metrics plus how much of the domain's
// vocabulary a fixed taxonomy could have placed (the Challenge 2 failure
// our dynamic hierarchies avoid).
type DomainRow struct {
	// Policy is the corpus name.
	Policy string
	// Edges and DataTypes are pipeline outputs.
	Edges, DataTypes int
	// HierarchyComplete reports whether every extracted data type was
	// placed in the dynamic hierarchy.
	HierarchyComplete bool
	// FixedCovered / FixedTotal is the fixed-taxonomy coverage of the
	// same vocabulary.
	FixedCovered, FixedTotal int
	// SampleVerdict is the verdict of a domain-specific query, proving
	// Phase 3 works unchanged.
	SampleVerdict query.Verdict
}

// Domains runs the pipeline unchanged over the consumer and healthcare
// corpora (§5: "the system generalizes across domains without
// modification").
func Domains(ctx context.Context) ([]DomainRow, error) {
	p, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name, text string
	}{
		{"Acme (consumer)", corpus.Mini()},
		{"HealthTrack (clinical)", corpus.HealthTrack()},
	}
	var rows []DomainRow
	for _, c := range cases {
		a, err := p.Analyze(ctx, c.text)
		if err != nil {
			return nil, fmt.Errorf("experiments: domain %s: %w", c.name, err)
		}
		st := a.Stats()
		complete := true
		for _, d := range a.KG.DataTypes() {
			if !a.KG.DataH.Has(d) {
				complete = false
			}
		}
		cov := baseline.FixedTaxonomyCoverage(a.KG.DataTypes())
		// Query an actual unconditional company practice with the
		// domain's own vocabulary; Phase 3 must confirm it unchanged.
		res, err := a.Engine.AskParams(ctx, sampleQuery(a))
		if err != nil {
			return nil, fmt.Errorf("experiments: domain query %s: %w", c.name, err)
		}
		rows = append(rows, DomainRow{
			Policy: c.name, Edges: st.Edges, DataTypes: st.DataTypes,
			HierarchyComplete: complete,
			FixedCovered:      cov.Covered, FixedTotal: cov.Total,
			SampleVerdict: res.Verdict,
		})
	}
	return rows, nil
}

// sampleQuery derives a query from the first unconditional allow-practice
// of the policy's company. Sender and Receiver are both set to the actor so
// FlowRoles resolves the company regardless of verb direction.
func sampleQuery(a *core.Analysis) llm.ParamSet {
	company := a.Extraction.Company
	for _, e := range a.KG.ED.Edges() {
		if e.From == company && e.Condition == "" && e.Permission == "allow" {
			return llm.ParamSet{Sender: e.From, Receiver: e.From, DataType: e.To, Action: e.Label}
		}
	}
	return llm.ParamSet{Sender: company, Receiver: company, DataType: "data", Action: "collect"}
}

// RenderDomains renders the cross-domain rows.
func RenderDomains(rows []DomainRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %7s %10s %10s %16s %10s\n",
		"Policy", "Edges", "DataTypes", "Hierarchy", "FixedTaxonomy", "Verdict")
	for _, r := range rows {
		h := "complete"
		if !r.HierarchyComplete {
			h = "INCOMPLETE"
		}
		fmt.Fprintf(&b, "%-24s %7d %10d %10s %9d/%-6d %10s\n",
			r.Policy, r.Edges, r.DataTypes, h, r.FixedCovered, r.FixedTotal, r.SampleVerdict)
	}
	return b.String()
}

// FleetRow reports the MAPS-style fleet aggregation (related-work
// comparison from §1.1: "MAPS ... analyzed over one million Android apps").
type FleetRow struct {
	// Category is the data-category keyword.
	Category string
	// CollectRate and ShareRate are fleet fractions.
	CollectRate, ShareRate float64
}

// Fleet runs MAPS-style aggregation over a generated policy fleet. The
// second return is the explicit do-not-sell rate; the third is the vague
// -language rate (the Usable Privacy Policy Project reports >75%).
func Fleet(ctx context.Context, policies int) ([]FleetRow, float64, float64, error) {
	texts := make([]string, policies)
	for i := range texts {
		texts[i] = corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("FleetApp%d", i), Seed: int64(7000 + i),
			PracticeStatements: 40, BoilerplateEvery: 2,
			DataRichness: 40, EntityRichness: 30,
		})
	}
	stats, err := baseline.AnalyzeFleet(ctx, texts)
	if err != nil {
		return nil, 0, 0, err
	}
	var rows []FleetRow
	for _, c := range stats.TopCategories() {
		rows = append(rows, FleetRow{
			Category: c, CollectRate: stats.CollectRates[c], ShareRate: stats.ShareRates[c],
		})
	}
	return rows, stats.DenySaleRate, stats.VagueRate, nil
}

// RenderFleet renders fleet rows.
func RenderFleet(rows []FleetRow, denySale, vagueRate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "Category", "Collect%", "Share%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.0f%% %9.0f%%\n", r.Category, r.CollectRate*100, r.ShareRate*100)
	}
	fmt.Fprintf(&b, "explicit do-not-sell statements: %.0f%% of policies\n", denySale*100)
	fmt.Fprintf(&b, "vague language present:          %.0f%% of policies (UPPP reports >75%%)\n", vagueRate*100)
	return b.String()
}
