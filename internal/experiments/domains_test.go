package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

func TestDomainsGeneralization(t *testing.T) {
	rows, err := Domains(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The dynamic hierarchy places every term in every domain.
		if !r.HierarchyComplete {
			t.Errorf("%s: dynamic hierarchy incomplete", r.Policy)
		}
		// Phase 3 confirms a real practice in each domain unchanged.
		if r.SampleVerdict != query.Valid {
			t.Errorf("%s: sample verdict = %s", r.Policy, r.SampleVerdict)
		}
	}
	// The fixed taxonomy covers the consumer domain better than the
	// clinical one, and leaves clinical vocabulary mostly unplaced —
	// Challenge 2.
	clinical := rows[1]
	if !strings.Contains(clinical.Policy, "clinical") {
		t.Fatalf("unexpected row order: %+v", rows)
	}
	fixedRate := float64(clinical.FixedCovered) / float64(clinical.FixedTotal)
	if fixedRate > 0.6 {
		t.Errorf("fixed taxonomy unexpectedly covers clinical domain: %.2f", fixedRate)
	}
	if RenderDomains(rows) == "" {
		t.Error("rendering broken")
	}
}

func TestFleetAggregation(t *testing.T) {
	rows, denySale, vagueRate, err := Fleet(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no fleet rows")
	}
	for _, r := range rows {
		if r.CollectRate < 0 || r.CollectRate > 1 || r.ShareRate < 0 || r.ShareRate > 1 {
			t.Errorf("rates out of range: %+v", r)
		}
	}
	if denySale < 0 || denySale > 1 {
		t.Errorf("deny-sale rate = %v", denySale)
	}
	// The §1 claim analog: vague language is pervasive in the fleet.
	if vagueRate < 0.75 {
		t.Errorf("vague-language rate = %v, expected >= 0.75 (UPPP claim shape)", vagueRate)
	}
	if RenderFleet(rows, denySale, vagueRate) == "" {
		t.Error("rendering broken")
	}
}
