package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestBootSweepShape runs the E17 sweep at toy scale: every duration is
// populated, speedup is finite, and the renderer emits one row per point.
func TestBootSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("seeds analyzed policies; skipped in -short")
	}
	rows, err := BootSweep(context.Background(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Policies != 2 || r.WALBytes == 0 || r.SnapshotBytes == 0 {
		t.Errorf("row not populated: %+v", r)
	}
	if r.WALReplay <= 0 || r.IndexedOpen <= 0 || r.EagerDecode <= 0 {
		t.Errorf("durations not populated: %+v", r)
	}
	if r.Speedup() <= 0 {
		t.Errorf("speedup = %v", r.Speedup())
	}
	out := RenderBoot(rows)
	if !strings.Contains(out, "Speedup") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("render:\n%s", out)
	}
}
