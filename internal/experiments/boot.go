package experiments

// E17: cold-boot cost across the three persistence generations. E15
// showed that after lazy recovery the store's own linear replay is the
// dominant boot cost at corpus scale; the indexed v2 snapshot removes
// it. Each sweep point seeds a disk store with N analyzed policies and
// measures three boots over identical logical content:
//
//	wal-replay  open a directory that never compacted — every record is
//	            replayed from the log (the post-PR7 lazy-boot floor)
//	indexed     open a compacted directory — header + metadata index
//	            only, payload bytes stay on disk (snapshot v2)
//	eager       indexed open plus decoding every stored analysis — what
//	            a fully-warm boot still pays after the open itself
//
// The wal-replay/indexed ratio is the headline: it is what snapshot v2
// shaves off boot-to-first-byte, and it grows with payload bytes since
// the indexed open never reads them.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// BootRow is one point of the boot-cost sweep.
type BootRow struct {
	// Policies is the number of stored policies (one version each).
	Policies int
	// WALBytes is the uncompacted log size the wal-replay boot reads.
	WALBytes int64
	// SnapshotBytes is the v2 snapshot file size after compaction.
	SnapshotBytes int64
	// WALReplay is OpenDisk time against the never-compacted directory.
	WALReplay time.Duration
	// IndexedOpen is OpenDisk time against the compacted v2 directory.
	IndexedOpen time.Duration
	// EagerDecode is the additional time to load + decode every stored
	// analysis after the indexed open.
	EagerDecode time.Duration
}

// Speedup is the wal-replay/indexed boot ratio.
func (r BootRow) Speedup() float64 {
	if r.IndexedOpen == 0 {
		return 0
	}
	return float64(r.WALReplay) / float64(r.IndexedOpen)
}

// BootSweep measures cold-boot cost at each policy count.
func BootSweep(ctx context.Context, policyCounts []int) ([]BootRow, error) {
	// A small pool of distinct analyses is cycled across the store: boot
	// cost depends on stored bytes, not on how many unique texts produced
	// them, and this keeps seeding O(pool) analyzer work per sweep.
	p, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	const pool = 8
	var payloads [][]byte
	for i := 0; i < pool; i++ {
		text := corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("BootCo%d", i), Seed: int64(2000 + i),
			PracticeStatements: 40, BoilerplateEvery: 4,
			DataRichness: 60, EntityRichness: 40,
		})
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return nil, err
		}
		payload, err := core.EncodeAnalysis(a)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, payload)
	}

	var rows []BootRow
	for _, n := range policyCounts {
		row, err := bootOnce(p, payloads, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func bootOnce(p *core.Pipeline, payloads [][]byte, n int) (BootRow, error) {
	dir, err := os.MkdirTemp("", "quagmire-boot")
	if err != nil {
		return BootRow{}, err
	}
	defer os.RemoveAll(dir)

	// Seed with compaction disabled so every record stays in the WAL,
	// batched to keep fsync count flat.
	st, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: -1})
	if err != nil {
		return BootRow{}, err
	}
	const batch = 64
	for off := 0; off < n; off += batch {
		var entries []store.BatchEntry
		for i := off; i < n && i < off+batch; i++ {
			entries = append(entries, store.BatchEntry{Version: store.Version{
				VersionMeta: store.VersionMeta{Company: fmt.Sprintf("BootCo%d", i%len(payloads))},
				Payload:     payloads[i%len(payloads)],
			}})
		}
		if _, err := st.AppendBatch(entries); err != nil {
			return BootRow{}, err
		}
	}
	row := BootRow{Policies: n, WALBytes: st.Health().WALBytes}
	// Crash: abandon st without Close, so the first reopen replays the
	// whole log.

	start := time.Now()
	st2, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: -1})
	if err != nil {
		return BootRow{}, err
	}
	row.WALReplay = time.Since(start)
	// Clean shutdown compacts the log into an indexed v2 snapshot.
	if err := st2.Close(); err != nil {
		return BootRow{}, err
	}
	if fi, err := os.Stat(filepath.Join(dir, "snapshot.v2")); err == nil {
		row.SnapshotBytes = fi.Size()
	}

	start = time.Now()
	st3, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: -1})
	if err != nil {
		return BootRow{}, err
	}
	row.IndexedOpen = time.Since(start)
	defer st3.Close()

	pols, err := st3.List()
	if err != nil {
		return BootRow{}, err
	}
	if len(pols) != n {
		return BootRow{}, fmt.Errorf("booted %d policies, want %d", len(pols), n)
	}
	start = time.Now()
	for _, pol := range pols {
		payload, err := st3.LoadPayload(pol.ID, pol.Versions)
		if err != nil {
			return BootRow{}, err
		}
		if _, err := p.DecodeAnalysis(payload); err != nil {
			return BootRow{}, err
		}
	}
	row.EagerDecode = time.Since(start)
	return row, nil
}

// RenderBoot renders the sweep as a table.
func RenderBoot(rows []BootRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %10s %12s %12s %12s %10s\n",
		"Policies", "WAL KiB", "Snap KiB", "WAL replay", "Indexed", "Eager+", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10.1f %10.1f %12s %12s %12s %9.1fx\n",
			r.Policies, float64(r.WALBytes)/1024, float64(r.SnapshotBytes)/1024,
			r.WALReplay.Round(10*time.Microsecond), r.IndexedOpen.Round(10*time.Microsecond),
			r.EagerDecode.Round(10*time.Microsecond), r.Speedup())
	}
	return b.String()
}
