package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/smtlib"
)

// SMTRow is one point of the solver clause-count sweep (E3), the paper's
// headline negative result: "solver timeouts occur when formulas contain
// hundreds of clauses even for single queries".
type SMTRow struct {
	// Edges is the number of policy edges encoded.
	Edges int
	// Clauses is the ground clause count the solver saw.
	Clauses int
	// FormulaSize is the FOL node count before clausification.
	FormulaSize int
	// Status is the solver outcome.
	Status smt.Status
	// Reason explains Unknown outcomes.
	Reason string
	// Instantiations counts quantifier instances generated.
	Instantiations int
	// Elapsed is wall-clock solve time.
	Elapsed time.Duration
}

// SMTSweep encodes pipeline-style formulas over growing numbers of policy
// edges (each with the quantified subtype axioms the encoding requires)
// and solves them under fixed resource limits. Small encodings solve;
// large ones exhaust the budget — the paper's timeout behaviour, made
// deterministic through step-counted limits.
func SMTSweep(edgeCounts []int, limits smt.Limits) []SMTRow {
	return SMTSweepStrategy(edgeCounts, limits, smt.FullGrounding)
}

// SMTSweepStrategy is SMTSweep with an explicit instantiation strategy
// (ablation A4: full grounding vs trigger-based E-matching).
func SMTSweepStrategy(edgeCounts []int, limits smt.Limits, strategy smt.InstStrategy) []SMTRow {
	var rows []SMTRow
	for _, n := range edgeCounts {
		formula := syntheticPolicyFormula(n)
		solver := smt.NewSolver()
		solver.Limits = limits
		solver.Strategy = strategy
		solver.Assert(formula)
		start := time.Now()
		res := solver.CheckSat()
		rows = append(rows, SMTRow{
			Edges:          n,
			Clauses:        res.Stats.GroundClauses,
			FormulaSize:    formula.Size(),
			Status:         res.Status,
			Reason:         res.Reason,
			Instantiations: res.Stats.Instantiations,
			Elapsed:        time.Since(start),
		})
	}
	return rows
}

// syntheticPolicyFormula builds the pipeline's encoding shape for n edges:
// practice facts over distinct constants, conditional implications with
// uninterpreted vague predicates, subtype facts, the quantified
// reflexivity/transitivity axioms, and a negated existential goal.
func syntheticPolicyFormula(n int) *fol.Formula {
	var axioms []*fol.Formula
	for i := 0; i < n; i++ {
		atom := fol.Pred("practice",
			fol.Const("company"),
			fol.Const(fmt.Sprintf("action_%d", i%8)),
			fol.Const(fmt.Sprintf("data_%d", i)),
			fol.Const(fmt.Sprintf("party_%d", i%16)),
		)
		if i%3 == 0 {
			axioms = append(axioms, fol.Implies(
				fol.UninterpretedPred(fmt.Sprintf("cond_vague_%d", i%5)), atom))
		} else {
			axioms = append(axioms, atom)
		}
		if i > 0 {
			axioms = append(axioms, fol.Pred("subtype",
				fol.Const(fmt.Sprintf("data_%d", i)),
				fol.Const(fmt.Sprintf("data_%d", i/2))))
		}
	}
	axioms = append(axioms,
		fol.Forall("x", fol.Pred("subtype", fol.Var("x"), fol.Var("x"))),
		fol.Forall("x", fol.Forall("y", fol.Forall("z",
			fol.Implies(
				fol.And(
					fol.Pred("subtype", fol.Var("x"), fol.Var("y")),
					fol.Pred("subtype", fol.Var("y"), fol.Var("z")),
				),
				fol.Pred("subtype", fol.Var("x"), fol.Var("z")),
			)))),
	)
	goal := fol.Exists("d", fol.And(
		fol.Pred("subtype", fol.Var("d"), fol.Const("data_0")),
		fol.Exists("o", fol.Pred("practice", fol.Const("company"), fol.Const("action_0"), fol.Var("d"), fol.Var("o"))),
	))
	return fol.And(fol.And(axioms...), fol.Not(goal))
}

// RenderSMT renders sweep rows.
func RenderSMT(rows []SMTRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %13s %10s %14s %12s  %s\n", "Edges", "Clauses", "FormulaSize", "Status", "Instantiated", "Elapsed", "Reason")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10d %13d %10s %14d %12s  %s\n",
			r.Edges, r.Clauses, r.FormulaSize, r.Status, r.Instantiations,
			r.Elapsed.Round(time.Millisecond), r.Reason)
	}
	return b.String()
}

// WholePolicyRow compares subgraph-scoped against whole-policy encoding of
// the same query (ablation A3 context and the §4.4 bottleneck claim).
type WholePolicyRow struct {
	// Mode is "subgraph" or "whole-policy".
	Mode string
	// FormulaSize is the FOL node count.
	FormulaSize int
	// Verdict is the query outcome.
	Verdict query.Verdict
	// Elapsed is wall-clock time.
	Elapsed time.Duration
}

// WholePolicyComparison runs one query against the TikTak analysis in
// subgraph mode and whole-policy mode.
func WholePolicyComparison(ctx context.Context, limits smt.Limits) ([]WholePolicyRow, error) {
	p, err := core.New(core.Options{Limits: limits})
	if err != nil {
		return nil, err
	}
	a, err := p.Analyze(ctx, corpus.TikTak())
	if err != nil {
		return nil, err
	}
	q := "Does TikTak share my email address with advertising partners?"
	var rows []WholePolicyRow
	for _, mode := range []struct {
		name  string
		whole bool
	}{{"subgraph", false}, {"whole-policy", true}} {
		a.Engine.WholePolicy = mode.whole
		start := time.Now()
		res, err := a.Engine.Ask(ctx, q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WholePolicyRow{
			Mode: mode.name, FormulaSize: res.FormulaSize,
			Verdict: res.Verdict, Elapsed: time.Since(start),
		})
	}
	return rows, nil
}

// RenderWholePolicy renders comparison rows.
func RenderWholePolicy(rows []WholePolicyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %13s %10s %12s\n", "Mode", "FormulaSize", "Verdict", "Elapsed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %13d %10s %12s\n", r.Mode, r.FormulaSize, r.Verdict, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// SMTLIBValidity confirms the §4.4 claim that valid SMT-LIB is generated
// for both policies: it compiles one query per policy and re-parses the
// script.
func SMTLIBValidity(ctx context.Context) ([]string, error) {
	p, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pol := range []struct{ name, text, q string }{
		{"TikTak", corpus.TikTak(), "Does TikTak share my email address with advertising partners?"},
		{"MetaBook", corpus.MetaBook(), "Does MetaBook collect my payment information?"},
	} {
		a, err := p.Analyze(ctx, pol.text)
		if err != nil {
			return nil, err
		}
		res, err := a.Engine.Ask(ctx, pol.q)
		if err != nil {
			return nil, err
		}
		if _, err := smtlib.DecodeScript(res.Script); err != nil {
			return nil, fmt.Errorf("experiments: %s generated invalid SMT-LIB: %w", pol.name, err)
		}
		out = append(out, fmt.Sprintf("%s: valid SMT-LIB (%d bytes, %d placeholders, verdict %s)",
			pol.name, len(res.Script), len(res.Placeholders), res.Verdict))
	}
	return out, nil
}
