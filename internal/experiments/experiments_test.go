package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

func TestTable2Decomposition(t *testing.T) {
	rows, err := Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row 1: the compound when-clause statement yields multiple edges
	// including user activities from inside the condition clause.
	if len(rows[0].Edges) < 5 {
		t.Errorf("row 1 edges = %d (%v), want >= 5", len(rows[0].Edges), rows[0].Edges)
	}
	// Row 2: enumerated profile statement yields ten distinct edges,
	// matching the paper exactly.
	if len(rows[1].Edges) != 10 {
		t.Errorf("row 2 edges = %d (%v), want 10", len(rows[1].Edges), rows[1].Edges)
	}
	// Row 3: contact-finding yields the causal choose edge plus
	// access+collect over the contact data types.
	if len(rows[2].Edges) < 6 {
		t.Errorf("row 3 edges = %d (%v), want >= 6", len(rows[2].Edges), rows[2].Edges)
	}
	joined := strings.Join(rows[2].Edges, " ")
	for _, want := range []string{"choose to find", "access", "collect", "phone number of contacts"} {
		if !strings.Contains(joined, want) {
			t.Errorf("row 3 missing %q: %v", want, rows[2].Edges)
		}
	}
	if RenderDecomp(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestTable3Decomposition(t *testing.T) {
	rows, err := Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Camera/voice features: multiple collection edges.
	if len(rows[0].Edges) < 4 {
		t.Errorf("camera row edges = %d (%v)", len(rows[0].Edges), rows[0].Edges)
	}
	// Interaction tracking: view/interact/engage as distinct actions.
	joined := strings.Join(rows[1].Edges, " ")
	for _, want := range []string{"view", "interact with", "engage with"} {
		if !strings.Contains(joined, want) {
			t.Errorf("interaction row missing %q: %v", want, rows[1].Edges)
		}
	}
	// Financial ecosystem: payment enumeration plus process/preserve.
	joined = strings.Join(rows[2].Edges, " ")
	for _, want := range []string{"process", "preserve", "truncated credit card number"} {
		if !strings.Contains(joined, want) {
			t.Errorf("financial row missing %q: %v", want, rows[2].Edges)
		}
	}
	if len(rows[2].Edges) < 6 {
		t.Errorf("financial row edges = %d, want >= 6", len(rows[2].Edges))
	}
}

func TestSimilarityClaims(t *testing.T) {
	rows := SimilarityClaims()
	byPair := map[string]float64{}
	for _, r := range rows {
		byPair[r.A+"|"+r.B] = r.Score
	}
	// Near-identical pair scores very high (paper: 0.999).
	if byPair["email address|email addresses"] < 0.9 {
		t.Errorf("plural-variant similarity = %v", byPair["email address|email addresses"])
	}
	// Related pairs beat the unrelated control.
	control := byPair["email address|credit card number"]
	for _, pair := range []string{"email address|email", "location data|location information", "location data|gps location"} {
		if byPair[pair] <= control {
			t.Errorf("%s (%v) should beat control (%v)", pair, byPair[pair], control)
		}
	}
	if !strings.Contains(RenderSimilarity(rows), "email") {
		t.Error("rendering broken")
	}
}

func TestSMTSweepShape(t *testing.T) {
	limits := smt.Limits{MaxInstantiations: 3000, MaxSatSteps: 200000, MaxRounds: 2}
	rows := SMTSweep([]int{2, 5, 100, 200}, limits)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small encodings solve (the goal follows: unsat).
	if rows[0].Status == smt.Unknown {
		t.Errorf("tiny encoding unknown: %+v", rows[0])
	}
	// Large encodings exhaust the budget — the paper's timeout.
	last := rows[len(rows)-1]
	if last.Status != smt.Unknown {
		t.Errorf("large encoding should be resource-out, got %s (%d clauses)", last.Status, last.Clauses)
	}
	if last.Reason == "" {
		t.Error("unknown without reason")
	}
	// Clause counts grow with edges.
	if rows[3].Clauses <= rows[0].Clauses {
		t.Errorf("clauses did not grow: %d vs %d", rows[3].Clauses, rows[0].Clauses)
	}
	if RenderSMT(rows) == "" {
		t.Error("rendering broken")
	}
}

func TestVerdictsMapping(t *testing.T) {
	rows, err := Verdicts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Want != r.Got {
			t.Errorf("verdict mismatch for %q: want %s got %s", r.Question, r.Want, r.Got)
		}
	}
	// The conditional case surfaces its placeholder.
	foundConditional := false
	for _, r := range rows {
		if len(r.ConditionalOn) > 0 {
			foundConditional = true
		}
	}
	if !foundConditional {
		t.Error("no conditionally valid verdict in the set")
	}
	if !strings.Contains(RenderVerdicts(rows), "VALID") {
		t.Error("rendering broken")
	}
}

func TestIncrementalSweepShape(t *testing.T) {
	rows, err := IncrementalSweep(context.Background(), []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LLMCallsIncremental >= r.LLMCallsFull {
			t.Errorf("incremental (%d) not cheaper than full (%d) at %.0f%%",
				r.LLMCallsIncremental, r.LLMCallsFull, r.EditedFraction*100)
		}
	}
	// More edits cost more.
	if rows[1].LLMCallsIncremental <= rows[0].LLMCallsIncremental {
		t.Errorf("cost not monotone in edit fraction: %+v", rows)
	}
	if RenderIncremental(rows) == "" {
		t.Error("rendering broken")
	}
}

func TestContradictionsShape(t *testing.T) {
	sum, err := Contradictions(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Policies != 12 {
		t.Fatalf("policies = %d", sum.Policies)
	}
	if sum.Apparent == 0 {
		t.Error("no apparent contradictions across the fleet")
	}
	if sum.Apparent != sum.Exceptions+sum.Genuine {
		t.Errorf("accounting: %d != %d + %d", sum.Apparent, sum.Exceptions, sum.Genuine)
	}
	if !strings.Contains(RenderLint(sum), "14.2%") {
		t.Error("rendering missing paper reference")
	}
}

func TestPaperTable1Embedded(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 2 || rows[0].Edges != 974 || rows[1].Edges != 3801 {
		t.Errorf("paper rows = %+v", rows)
	}
	if !strings.Contains(RenderTable1(rows), "974") {
		t.Error("rendering broken")
	}
}

func TestVerdictTypeReexported(t *testing.T) {
	var v query.Verdict = query.Valid
	if v != "VALID" {
		t.Error("verdict constant drift")
	}
}

func TestScalingSweepSmall(t *testing.T) {
	rows, err := ScalingSweep(context.Background(), []int{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Words <= rows[0].Words {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Edges == 0 || rows[0].Segments == 0 {
		t.Errorf("empty extraction: %+v", rows[0])
	}
	out := RenderScaling(rows)
	if !strings.Contains(out, "µs/word") {
		t.Errorf("rendering: %s", out)
	}
}

func TestTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale experiment")
	}
	rows, err := Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Policy != "TikTak" || rows[1].Policy != "MetaBook" {
		t.Errorf("row order: %+v", rows)
	}
	if rows[1].Edges < 2*rows[0].Edges {
		t.Errorf("MetaBook (%d) not ≫ TikTak (%d)", rows[1].Edges, rows[0].Edges)
	}
}

func TestWholePolicyComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale experiment")
	}
	rows, err := WholePolicyComparison(context.Background(), smt.Limits{MaxInstantiations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].FormulaSize <= rows[0].FormulaSize {
		t.Errorf("whole-policy (%d) not larger than subgraph (%d)", rows[1].FormulaSize, rows[0].FormulaSize)
	}
	if RenderWholePolicy(rows) == "" {
		t.Error("rendering broken")
	}
}

func TestSMTLIBValidityBothPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale experiment")
	}
	lines, err := SMTLIBValidity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || !strings.Contains(lines[0], "valid SMT-LIB") {
		t.Errorf("lines = %v", lines)
	}
}
