package experiments

// E12: restart recovery cost of the durable policy store. A disk store is
// filled with N analyzed policies, abandoned without Close (crash
// simulation — no snapshot, recovery must replay the whole WAL), then
// reopened. The sweep reports WAL replay time and throughput separately
// from the engine-rebuild time (decoding each policy's latest analysis and
// wiring a fresh query engine), because the two scale differently: replay
// is I/O + JSON decode over every logged version, rebuild is
// per-policy graph reconstruction.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// RecoveryRow is one point of the recovery sweep.
type RecoveryRow struct {
	// Policies is the number of stored policies (one version each).
	Policies int
	// WALBytes is the log size recovery replays.
	WALBytes int64
	// Replay is the store-open time: snapshot load + WAL replay.
	Replay time.Duration
	// Rebuild is the engine-rebuild time: decode every latest version and
	// construct its query engine.
	Rebuild time.Duration
}

// ThroughputMBs is the WAL replay rate in MB/s.
func (r RecoveryRow) ThroughputMBs() float64 {
	s := r.Replay.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.WALBytes) / (1 << 20) / s
}

// RecoverySweep measures crash recovery at each policy count.
func RecoverySweep(ctx context.Context, policyCounts []int) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, n := range policyCounts {
		row, err := recoverOnce(ctx, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func recoverOnce(ctx context.Context, n int) (RecoveryRow, error) {
	dir, err := os.MkdirTemp("", "quagmire-recovery")
	if err != nil {
		return RecoveryRow{}, err
	}
	defer os.RemoveAll(dir)

	p, err := core.New(core.Options{})
	if err != nil {
		return RecoveryRow{}, err
	}
	// Automatic compaction is disabled so every version stays in the WAL —
	// the sweep measures pure log replay, not snapshot-load shortcuts.
	st, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: -1})
	if err != nil {
		return RecoveryRow{}, err
	}
	for i := 0; i < n; i++ {
		text := corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("RecoverCo%d", i), Seed: int64(1000 + i),
			PracticeStatements: 40, BoilerplateEvery: 4,
			DataRichness: 60, EntityRichness: 40,
		})
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return RecoveryRow{}, err
		}
		payload, err := core.EncodeAnalysis(a)
		if err != nil {
			return RecoveryRow{}, err
		}
		if _, err := st.Create("", store.Version{
			VersionMeta: store.VersionMeta{Company: a.Extraction.Company},
			Payload:     payload,
		}); err != nil {
			return RecoveryRow{}, err
		}
	}
	// Crash: abandon st without Close. No snapshot is written, so the
	// reopen below recovers from the WAL alone.
	walBytes := st.Health().WALBytes

	start := time.Now()
	st2, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: -1})
	if err != nil {
		return RecoveryRow{}, err
	}
	defer st2.Close()
	replay := time.Since(start)

	p2, err := core.New(core.Options{})
	if err != nil {
		return RecoveryRow{}, err
	}
	pols, err := st2.List()
	if err != nil {
		return RecoveryRow{}, err
	}
	if len(pols) != n {
		return RecoveryRow{}, fmt.Errorf("recovered %d policies, want %d", len(pols), n)
	}
	start = time.Now()
	for _, pol := range pols {
		payload, err := st2.LoadPayload(pol.ID, pol.Versions)
		if err != nil {
			return RecoveryRow{}, err
		}
		if _, err := p2.DecodeAnalysis(payload); err != nil {
			return RecoveryRow{}, err
		}
	}
	rebuild := time.Since(start)

	return RecoveryRow{Policies: n, WALBytes: walBytes, Replay: replay, Rebuild: rebuild}, nil
}

// RenderRecovery renders the sweep as a table.
func RenderRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "Policies", "WAL KiB", "Replay", "Rebuild", "MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12.1f %12s %12s %12.1f\n",
			r.Policies, float64(r.WALBytes)/1024,
			r.Replay.Round(10*time.Microsecond), r.Rebuild.Round(10*time.Microsecond),
			r.ThroughputMBs())
	}
	return b.String()
}
