// Package experiments regenerates every table and evaluation claim of the
// paper: Table 1 extraction statistics, Tables 2–3 multi-edge
// decompositions, the §4.2 embedding-similarity claims, extraction
// scaling, SMT clause-count blow-up, incremental updates, the
// PolicyLint-style contradiction analysis and the end-to-end verdict
// mapping. Each experiment returns structured rows plus a papers-style
// text rendering; cmd/experiments and the benchmark suite are thin
// wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/baseline"
	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/segment"
)

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	// Policy is the corpus name.
	Policy string
	// PaperNodes etc. record the paper's reported values for comparison.
	Nodes, Edges, Entities, DataTypes int
	// Words is the policy length.
	Words int
}

// paperTable1 holds the published values for EXPERIMENTS.md comparison.
var paperTable1 = map[string]Table1Row{
	"TikTok (paper)": {Policy: "TikTok (paper)", Nodes: 419, Edges: 974, Entities: 217, DataTypes: 122},
	"Meta (paper)":   {Policy: "Meta (paper)", Nodes: 1323, Edges: 3801, Entities: 700, DataTypes: 382},
}

// PaperTable1 returns the published Table 1 rows.
func PaperTable1() []Table1Row {
	return []Table1Row{paperTable1["TikTok (paper)"], paperTable1["Meta (paper)"]}
}

// Table1 runs full extraction over both corpus policies and reports the
// Table 1 metrics.
func Table1(ctx context.Context) ([]Table1Row, error) {
	p, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, pol := range []struct{ name, text string }{
		{"TikTak", corpus.TikTak()},
		{"MetaBook", corpus.MetaBook()},
	} {
		a, err := p.Analyze(ctx, pol.text)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", pol.name, err)
		}
		st := a.Stats()
		rows = append(rows, Table1Row{
			Policy: pol.name, Nodes: st.Nodes, Edges: st.Edges,
			Entities: st.Entities, DataTypes: st.DataTypes,
			Words: len(strings.Fields(pol.text)),
		})
	}
	return rows, nil
}

// RenderTable1 renders rows in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s %9s %10s %8s\n", "Metric", "Nodes", "Edges", "Entities", "DataTypes", "Words")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %8d %9d %10d %8d\n", r.Policy, r.Nodes, r.Edges, r.Entities, r.DataTypes, r.Words)
	}
	return b.String()
}

// DecompRow is one row of Tables 2–3: a policy statement and the semantic
// edges it decomposes into.
type DecompRow struct {
	// Statement is the policy text.
	Statement string
	// Edges are the extracted [actor]-action->[object] edges.
	Edges []string
}

// Decompose extracts the multi-edge decomposition of each statement for a
// company, reproducing the Tables 2–3 methodology.
func Decompose(ctx context.Context, company string, statements []string) ([]DecompRow, error) {
	e := extract.New(llm.NewCachingClient(llm.NewSim()))
	var rows []DecompRow
	for _, stmt := range statements {
		seg := segment.Segment{ID: segment.Hash(stmt), Text: stmt}
		ps, err := e.ExtractSegment(ctx, company, seg)
		if err != nil {
			return nil, err
		}
		row := DecompRow{Statement: stmt}
		for _, p := range ps {
			actor, _ := llm.FlowRoles(p.ParamSet)
			row.Edges = append(row.Edges, fmt.Sprintf("[%s]-%s->[%s]", actor, p.Action, p.DataType))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 decomposes the TikTak analog statements (paper Table 2).
func Table2(ctx context.Context) ([]DecompRow, error) {
	return Decompose(ctx, "TikTak", corpus.TableStatements("TikTak")[:3])
}

// Table3 decomposes the MetaBook analog statements (paper Table 3).
func Table3(ctx context.Context) ([]DecompRow, error) {
	return Decompose(ctx, "MetaBook", corpus.TableStatements("MetaBook")[3:])
}

// RenderDecomp renders decomposition rows.
func RenderDecomp(rows []DecompRow) string {
	var b strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&b, "Statement %d (%d edges): %s\n", i+1, len(r.Edges), r.Statement)
		for _, e := range r.Edges {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	return b.String()
}

// SimRow is one embedding-similarity claim (§4.2/§4.3).
type SimRow struct {
	// A and B are the compared terms.
	A, B string
	// Score is the cosine similarity.
	Score float64
	// PaperClaim describes what the paper reports for the pair.
	PaperClaim string
}

// SimilarityClaims evaluates the paper's similarity examples.
func SimilarityClaims() []SimRow {
	m := embed.NewModel("text-embedding-sim")
	rows := []SimRow{
		{A: "email address", B: "email", PaperClaim: "matches with 0.999 similarity"},
		{A: "location data", B: "location information", PaperClaim: "successfully matches"},
		{A: "location data", B: "gps location", PaperClaim: "successfully matches"},
		{A: "email address", B: "email addresses", PaperClaim: "(normalization)"},
		{A: "email address", B: "credit card number", PaperClaim: "(unrelated control)"},
	}
	for i := range rows {
		rows[i].Score = m.Similarity(rows[i].A, rows[i].B)
	}
	return rows
}

// RenderSimilarity renders similarity rows.
func RenderSimilarity(rows []SimRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-24s %8s   %s\n", "Term A", "Term B", "Cosine", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-24s %8.3f   %s\n", r.A, r.B, r.Score, r.PaperClaim)
	}
	return b.String()
}

// ScaleRow is one point of the extraction-scaling sweep (E2).
type ScaleRow struct {
	// Words is the policy size.
	Words int
	// Segments and Edges are extraction outputs.
	Segments, Edges int
	// Elapsed is the wall-clock extraction time.
	Elapsed time.Duration
}

// ScalingSweep extracts policies of increasing size and reports
// throughput; the paper claims extraction "scales linearly with policy
// size through segmentation and caching".
func ScalingSweep(ctx context.Context, statementCounts []int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range statementCounts {
		text := corpus.Generate(corpus.Config{
			Company: "ScaleCo", Seed: 42, PracticeStatements: n,
			BoilerplateEvery: 1, DataRichness: 120, EntityRichness: 150,
		})
		p, err := core.New(core.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Words:    len(strings.Fields(text)),
			Segments: len(a.Extraction.Segments),
			Edges:    a.Stats().Edges,
			Elapsed:  time.Since(start),
		})
	}
	return rows, nil
}

// RenderScaling renders scaling rows with a per-word rate column.
func RenderScaling(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %8s %12s %14s\n", "Words", "Segments", "Edges", "Elapsed", "µs/word")
	for _, r := range rows {
		rate := float64(r.Elapsed.Microseconds()) / float64(r.Words)
		fmt.Fprintf(&b, "%10d %10d %8d %12s %14.1f\n", r.Words, r.Segments, r.Edges, r.Elapsed.Round(time.Millisecond), rate)
	}
	return b.String()
}

// IncRow is one point of the incremental-update sweep (E4).
type IncRow struct {
	// EditedFraction is the share of practice statements modified.
	EditedFraction float64
	// SegmentsChanged and SegmentsTotal report the diff.
	SegmentsChanged, SegmentsTotal int
	// LLMCallsIncremental and LLMCallsFull compare effort.
	LLMCallsIncremental, LLMCallsFull int
}

// IncrementalSweep edits growing fractions of a policy and compares the
// model-call cost of incremental re-extraction against full re-analysis.
func IncrementalSweep(ctx context.Context, fractions []float64) ([]IncRow, error) {
	base := corpus.Generate(corpus.Config{
		Company: "IncrCo", Seed: 77, PracticeStatements: 120,
		BoilerplateEvery: 1, DataRichness: 80, EntityRichness: 80,
	})
	var rows []IncRow
	for _, frac := range fractions {
		edited := editFraction(base, frac)

		// Incremental path.
		ext := extract.New(llm.NewSim())
		prev, err := ext.ExtractPolicy(ctx, base)
		if err != nil {
			return nil, err
		}
		callsBefore := ext.Stats.LLMCalls
		_, diff, err := ext.ReExtract(ctx, prev, edited)
		if err != nil {
			return nil, err
		}
		incCalls := ext.Stats.LLMCalls - callsBefore

		// Full path.
		full := extract.New(llm.NewSim())
		if _, err := full.ExtractPolicy(ctx, edited); err != nil {
			return nil, err
		}
		rows = append(rows, IncRow{
			EditedFraction:      frac,
			SegmentsChanged:     len(diff.Added),
			SegmentsTotal:       len(diff.Added) + len(diff.Kept),
			LLMCallsIncremental: incCalls,
			LLMCallsFull:        full.Stats.LLMCalls,
		})
	}
	return rows, nil
}

// editFraction rewrites approximately the given fraction of practice
// statements (lines ending with a period) deterministically.
func editFraction(policy string, frac float64) string {
	lines := strings.Split(policy, "\n")
	var practiceIdx []int
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "#") && strings.HasSuffix(t, ".") {
			practiceIdx = append(practiceIdx, i)
		}
	}
	n := int(float64(len(practiceIdx)) * frac)
	for i := 0; i < n && i < len(practiceIdx); i++ {
		// Deterministic spread across the document.
		idx := practiceIdx[(i*7)%len(practiceIdx)]
		lines[idx] = strings.TrimSuffix(lines[idx], ".") + " under the revised terms."
	}
	return strings.Join(lines, "\n")
}

// RenderIncremental renders incremental-update rows.
func RenderIncremental(rows []IncRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %10s %14s %10s %8s\n", "Edited", "Changed", "Total", "IncrCalls", "FullCalls", "Saved")
	for _, r := range rows {
		saved := 1 - float64(r.LLMCallsIncremental)/float64(r.LLMCallsFull)
		fmt.Fprintf(&b, "%7.0f%% %10d %10d %14d %10d %7.0f%%\n",
			r.EditedFraction*100, r.SegmentsChanged, r.SegmentsTotal,
			r.LLMCallsIncremental, r.LLMCallsFull, saved*100)
	}
	return b.String()
}

// LintSummary aggregates the PolicyLint-style analysis (E5).
type LintSummary struct {
	// Policies analyzed.
	Policies int
	// WithApparent counts policies showing >=1 apparent contradiction
	// (PolicyLint reports 14.2% of apps).
	WithApparent int
	// Apparent, Exceptions, Genuine are pair counts over all policies.
	Apparent, Exceptions, Genuine int
}

// Contradictions runs the PolicyLint-style detector over a fleet of
// generated policies and classifies apparent contradictions into coherent
// exceptions vs genuine conflicts.
func Contradictions(ctx context.Context, policies int) (LintSummary, error) {
	sum := LintSummary{Policies: policies}
	for i := 0; i < policies; i++ {
		text := corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("App%d", i), Seed: int64(9000 + i),
			PracticeStatements: 60, BoilerplateEvery: 2,
			DataRichness: 25, EntityRichness: 25,
		})
		e := extract.New(llm.NewSim())
		ex, err := e.ExtractPolicy(ctx, text)
		if err != nil {
			return sum, err
		}
		rep := baseline.Lint(ex.Practices)
		if len(rep.Apparent) > 0 {
			sum.WithApparent++
		}
		sum.Apparent += len(rep.Apparent)
		sum.Exceptions += rep.Exceptions
		sum.Genuine += rep.Genuine
	}
	return sum, nil
}

// RenderLint renders the contradiction summary.
func RenderLint(s LintSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policies analyzed:               %d\n", s.Policies)
	fmt.Fprintf(&b, "with apparent contradictions:    %d (%.1f%%; PolicyLint reports 14.2%% of apps)\n",
		s.WithApparent, 100*float64(s.WithApparent)/float64(s.Policies))
	fmt.Fprintf(&b, "apparent contradiction pairs:    %d\n", s.Apparent)
	fmt.Fprintf(&b, "  coherent exception patterns:   %d\n", s.Exceptions)
	fmt.Fprintf(&b, "  genuine conflicts:             %d\n", s.Genuine)
	return b.String()
}

// VerdictRow is one end-to-end query outcome (E6).
type VerdictRow struct {
	// Question is the natural-language query.
	Question string
	// Want and Got are expected/actual verdicts.
	Want, Got query.Verdict
	// Placeholders surfaced by the engine.
	Placeholders []string
	// ConditionalOn is non-empty for conditionally valid results.
	ConditionalOn []string
}

// Verdicts runs the standard query set against the Mini policy and checks
// the unsat⇒VALID / sat⇒INVALID mapping.
func Verdicts(ctx context.Context) ([]VerdictRow, error) {
	p, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	a, err := p.Analyze(ctx, corpus.Mini())
	if err != nil {
		return nil, err
	}
	cases := []struct {
		q    string
		want query.Verdict
	}{
		{"Does Acme share my email address with advertising partners?", query.Valid},
		{"Does Acme share my usage data with service providers?", query.Valid}, // conditionally
		{"Does Acme sell my personal information?", query.Invalid},
		{"Does Acme share my medical records with insurance companies?", query.Invalid},
		{"Does Acme collect my device identifiers?", query.Valid},
	}
	var rows []VerdictRow
	for _, c := range cases {
		res, err := a.Engine.Ask(ctx, c.q)
		if err != nil {
			return nil, fmt.Errorf("experiments: verdict %q: %w", c.q, err)
		}
		rows = append(rows, VerdictRow{
			Question: c.q, Want: c.want, Got: res.Verdict,
			Placeholders: res.Placeholders, ConditionalOn: res.ConditionalOn,
		})
	}
	return rows, nil
}

// RenderVerdicts renders verdict rows.
func RenderVerdicts(rows []VerdictRow) string {
	var b strings.Builder
	for _, r := range rows {
		mark := "ok"
		if r.Want != r.Got {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "[%-8s] want %-8s got %-8s  %s\n", mark, r.Want, r.Got, r.Question)
		if len(r.ConditionalOn) > 0 {
			fmt.Fprintf(&b, "            conditional on: %s\n", strings.Join(r.ConditionalOn, ", "))
		}
	}
	return b.String()
}
