package experiments

// E14: compliance-as-code suite throughput. The scenario executor routes a
// whole suite through one engine, so the interesting comparison is the
// solve-sharing strategy: a shared incremental core (whole-policy ground
// encoding built once, every scenario solved under assumptions) versus the
// default per-question subgraph encoding (each ask builds its own small
// formula), and — orthogonally — pooled workers versus one-at-a-time
// execution. The suite asks every data-type × recipient combination, so
// each case is a distinct question (no SMT result-cache hits masking the
// solver cost), and the sweep crosses two policy scales because the
// strategies trade off on policy size, not suite size: the shared core
// amortizes its one build across cases but that build covers the entire
// policy, re-encountering the paper's E3 blowup as policies grow, while
// subgraph encoding only ever pays for the practices a question touches.
// What the shared core buys is not speed but whole-policy semantics —
// cross-section contradictions surface as UNKNOWN instead of being
// invisible to a local subgraph — which is why `quagmire check` uses it
// for compliance gating and why its cost is worth measuring.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/scenario"
)

// ScenarioRow is one (policy × strategy) measurement.
type ScenarioRow struct {
	// Policy names the policy scale.
	Policy string
	// Cases is the suite size.
	Cases int
	// Mode names the execution strategy.
	Mode string
	// Elapsed is the whole-suite wall time.
	Elapsed time.Duration
	// CoreBuilds counts ground-core constructions during the run (0 for
	// subgraph mode, which never builds a shared core).
	CoreBuilds uint64
}

// PerCase is the amortized per-scenario cost.
func (r ScenarioRow) PerCase() time.Duration {
	if r.Cases == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Cases)
}

// scenarioGrid synthesizes distinct compliance questions: every data type
// crossed with every recipient, up to n cases.
func scenarioGrid(n int) []scenario.Case {
	dataTypes := []string{
		"email address", "device identifiers", "usage data",
		"precise location", "medical records", "browsing history",
	}
	recipients := []string{
		"advertising partners", "service providers", "insurance companies", "data brokers",
	}
	var cases []scenario.Case
	for _, d := range dataTypes {
		for _, r := range recipients {
			cases = append(cases, scenario.Case{
				Name:     fmt.Sprintf("%s -> %s", d, r),
				Question: fmt.Sprintf("Does Acme share my %s with %s?", d, r),
				// Expectations are irrelevant to throughput; UNKNOWN keeps
				// mismatches out of the failure counters without asserting
				// anything about the verdict mix.
				Want: query.Unknown,
			})
		}
	}
	if n > len(cases) {
		n = len(cases)
	}
	return cases[:n]
}

// scenarioPolicies are the policy scales under test. Both carry the
// company name the grid questions address.
func scenarioPolicies() []struct{ name, text string } {
	return []struct{ name, text string }{
		{"mini (4 practices)", corpus.Mini()},
		{"generated (15 practices)", corpus.Generate(corpus.Config{
			Company: "Acme", Seed: 7,
			PracticeStatements: 15, BoilerplateEvery: 4,
			DataRichness: 60, EntityRichness: 40,
		})},
	}
}

// scenarioStrategies are the execution strategies under comparison.
var scenarioStrategies = []struct {
	mode       string
	sharedCore bool
	workers    int
}{
	{"subgraph one-at-a-time", false, 1},
	{"shared-core one-at-a-time", true, 1},
	{"shared-core workers=4", true, 4},
}

// ScenarioThroughput measures an n-case suite under every strategy at each
// policy scale. Every cell gets a fresh pipeline and engine so the
// ground-core build cost lands inside the measured run and the counters
// start at zero.
func ScenarioThroughput(ctx context.Context, n int) ([]ScenarioRow, error) {
	cs := &scenario.CompiledSuite{Name: fmt.Sprintf("grid-%d", n), Cases: scenarioGrid(n)}
	var rows []ScenarioRow
	for _, pol := range scenarioPolicies() {
		for _, st := range scenarioStrategies {
			p, err := core.New(core.Options{SharedSolverCore: st.sharedCore})
			if err != nil {
				return nil, err
			}
			a, err := p.Analyze(ctx, pol.text)
			if err != nil {
				return nil, err
			}
			res, err := scenario.Execute(ctx, a.Engine, cs, scenario.ExecOptions{Workers: st.workers})
			if err != nil {
				return nil, err
			}
			if res.Errored > 0 {
				return nil, fmt.Errorf("%s/%s: %d scenario errors", pol.name, st.mode, res.Errored)
			}
			rows = append(rows, ScenarioRow{
				Policy:     pol.name,
				Cases:      len(cs.Cases),
				Mode:       st.mode,
				Elapsed:    res.Elapsed,
				CoreBuilds: p.Obs().Counter("quagmire_ground_core_builds_total").Value(),
			})
		}
	}
	return rows, nil
}

// RenderScenarios renders the sweep, with each policy block's cost
// relative to its one-at-a-time subgraph baseline.
func RenderScenarios(rows []ScenarioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %6s %-28s %12s %12s %12s %10s\n",
		"Policy", "Cases", "Strategy", "Elapsed", "Per-case", "Core builds", "vs subgraph")
	baselines := map[string]time.Duration{}
	for _, r := range rows {
		if r.Mode == scenarioStrategies[0].mode {
			baselines[r.Policy] = r.Elapsed
		}
	}
	for _, r := range rows {
		rel := "-"
		if base, ok := baselines[r.Policy]; ok && base > 0 && r.Elapsed != base {
			rel = fmt.Sprintf("x%.2f", float64(r.Elapsed)/float64(base))
		}
		fmt.Fprintf(&b, "%-26s %6d %-28s %12s %12s %12d %10s\n",
			r.Policy, r.Cases, r.Mode,
			r.Elapsed.Round(10*time.Microsecond), r.PerCase().Round(time.Microsecond),
			r.CoreBuilds, rel)
	}
	return b.String()
}
