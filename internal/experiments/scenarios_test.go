package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestScenarioThroughput(t *testing.T) {
	rows, err := ScenarioThroughput(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := len(scenarioPolicies()) * len(scenarioStrategies)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Cases != 2 || r.Elapsed <= 0 {
			t.Errorf("row = %+v", r)
		}
		// The strategy split is the experiment's point: shared-core runs
		// build the ground core exactly once, subgraph runs never do.
		wantBuilds := uint64(1)
		if strings.HasPrefix(r.Mode, "subgraph") {
			wantBuilds = 0
		}
		if r.CoreBuilds != wantBuilds {
			t.Errorf("%s/%s: core builds = %d, want %d", r.Policy, r.Mode, r.CoreBuilds, wantBuilds)
		}
	}
	out := RenderScenarios(rows)
	if !strings.Contains(out, "shared-core workers=4") || !strings.Contains(out, "vs subgraph") {
		t.Errorf("render:\n%s", out)
	}
}

func TestScenarioGridDistinctQuestions(t *testing.T) {
	cases := scenarioGrid(24)
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Question] {
			t.Errorf("duplicate question %q", c.Question)
		}
		seen[c.Question] = true
	}
	if len(cases) != 24 {
		t.Errorf("grid = %d cases", len(cases))
	}
	// Requesting more than the grid holds clamps instead of failing.
	if got := len(scenarioGrid(1000)); got != 24 {
		t.Errorf("clamped grid = %d", got)
	}
}
