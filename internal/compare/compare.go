// Package compare aligns the knowledge graphs of two different companies'
// policies and reports disclosure gaps — §5's "legal teams can identify
// gaps and contradictions between policies". Unlike a version diff (same
// lineage, internal/extract.CompareVersions), cross-policy comparison
// matches practices semantically: data types align through each side's
// hierarchy and embedding similarity, so "gps location" on one side
// matches "location information" on the other.
package compare

import (
	"context"
	"encoding/json"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// Gap is a practice disclosed by one policy with no counterpart in the
// other.
type Gap struct {
	// Action and DataType identify the practice on the disclosing side.
	Action   string `json:"action"`
	DataType string `json:"data_type"`
	// Condition carries the disclosing side's condition, if any.
	Condition string `json:"condition,omitempty"`
}

// Report is the two-sided gap analysis.
type Report struct {
	// CompanyA and CompanyB name the sides.
	CompanyA, CompanyB string
	// OnlyA lists practices A discloses with no semantic match in B.
	OnlyA []Gap
	// OnlyB is the mirror image.
	OnlyB []Gap
	// Shared counts semantically matched practices.
	Shared int
}

// Comparer aligns two knowledge graphs.
type Comparer struct {
	// Model scores term similarity; required.
	Model *embed.Model
	// Client, when non-nil, LLM-verifies borderline candidates the same
	// way Phase 3 vocabulary translation does.
	Client llm.Client
	// Threshold is the minimum similarity for an immediate data-type
	// match; candidates between VerifyFloor and Threshold go to the LLM.
	Threshold float64
	// VerifyFloor is the lowest similarity worth LLM-verifying; default
	// 0.25.
	VerifyFloor float64
}

// equivalent decides whether two data-type terms align, combining
// embedding similarity with optional LLM verification.
func (c *Comparer) equivalent(ctx context.Context, score float64, a, b string) bool {
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	if score >= threshold {
		return true
	}
	floor := c.VerifyFloor
	if floor <= 0 {
		floor = 0.25
	}
	if score < floor || c.Client == nil {
		return false
	}
	resp, err := c.Client.Complete(ctx, llm.SemanticEquivPrompt(a, b))
	if err != nil {
		return false
	}
	var out struct {
		Equivalent bool `json:"equivalent"`
	}
	if json.Unmarshal([]byte(resp.Text), &out) != nil {
		return false
	}
	return out.Equivalent
}

// Compare computes the gap report between two analyses' graphs.
func (c *Comparer) Compare(a, b *kg.KnowledgeGraph) Report {
	ctx := context.Background()
	rep := Report{CompanyA: a.Company, CompanyB: b.Company}

	pa := companyPractices(a)
	pb := companyPractices(b)

	// Index B's data types per action class for matching.
	ixB := embed.NewIndex(c.Model)
	for key := range pb {
		ixB.Add(key, strings.SplitN(key, "\x1f", 2)[1])
	}
	ixA := embed.NewIndex(c.Model)
	for key := range pa {
		ixA.Add(key, strings.SplitN(key, "\x1f", 2)[1])
	}

	matchedB := map[string]bool{}
	var keysA []string
	for k := range pa {
		keysA = append(keysA, k)
	}
	sort.Strings(keysA)
	for _, ka := range keysA {
		action, data := splitKey(ka)
		match := ""
		// Exact first, then similarity among same-action practices.
		if _, ok := pb[ka]; ok {
			match = ka
		} else {
			for _, m := range ixB.Search(data, 5) {
				mAction, mData := splitKey(m.Key)
				if mAction == action && c.equivalent(ctx, m.Score, data, mData) {
					match = m.Key
					break
				}
			}
		}
		if match != "" {
			matchedB[match] = true
			rep.Shared++
		} else {
			rep.OnlyA = append(rep.OnlyA, Gap{Action: action, DataType: data, Condition: pa[ka]})
		}
	}
	var keysB []string
	for k := range pb {
		keysB = append(keysB, k)
	}
	sort.Strings(keysB)
	for _, kb := range keysB {
		if matchedB[kb] {
			continue
		}
		action, data := splitKey(kb)
		// Mirror match: check against A.
		found := false
		if _, ok := pa[kb]; ok {
			found = true
		} else {
			for _, m := range ixA.Search(data, 5) {
				mAction, mData := splitKey(m.Key)
				if mAction == action && c.equivalent(ctx, m.Score, data, mData) {
					found = true
					break
				}
			}
		}
		if !found {
			rep.OnlyB = append(rep.OnlyB, Gap{Action: action, DataType: data, Condition: pb[kb]})
		}
	}
	return rep
}

// companyPractices collects the company's allow-practices keyed by
// normalized action+datatype, mapping to a representative condition.
func companyPractices(k *kg.KnowledgeGraph) map[string]string {
	out := map[string]string{}
	for _, e := range k.ED.Edges() {
		if e.From != k.Company || e.Permission == "deny" {
			continue
		}
		key := actionClass(e.Label) + "\x1f" + nlp.CanonicalTerm(e.To)
		if _, ok := out[key]; !ok {
			out[key] = e.Condition
		}
	}
	return out
}

// actionClass groups verbs into collect/share/process classes so that
// "obtain" on one side matches "gather" on the other.
func actionClass(action string) string {
	base := nlp.VerbBase(firstWord(action))
	switch base {
	case "collect", "receive", "obtain", "gather", "record", "access", "capture", "track", "infer", "derive", "scan", "read":
		return "collect"
	case "share", "disclose", "sell", "transfer", "send", "provide", "give", "transmit", "release", "distribute":
		return "share"
	default:
		return "process"
	}
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

func splitKey(k string) (action, data string) {
	parts := strings.SplitN(k, "\x1f", 2)
	return parts[0], parts[1]
}
