package compare

import (
	"context"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func analyze(t *testing.T, text string) *kg.KnowledgeGraph {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	return a.KG
}

const policyA = `# AlphaCo Privacy Policy

AlphaCo ("we") explains.

## Practices

We collect your email address.

We collect your gps location.

We share your browsing history with advertising partners.`

const policyB = `# BetaCo Privacy Policy

BetaCo ("we") explains.

## Practices

We collect your email address.

We gather your location information.

We collect your voiceprints.`

func TestCompareGaps(t *testing.T) {
	c := &Comparer{Model: embed.NewModel("text-embedding-sim"), Client: llm.NewSim()}
	rep := c.Compare(analyze(t, policyA), analyze(t, policyB))
	if rep.CompanyA != "AlphaCo" || rep.CompanyB != "BetaCo" {
		t.Fatalf("companies: %s/%s", rep.CompanyA, rep.CompanyB)
	}
	// Shared: email (exact) and location (cross-vocabulary: "gps
	// location" ~ "location information", collect ~ gather).
	if rep.Shared < 2 {
		t.Errorf("shared = %d (onlyA=%v onlyB=%v)", rep.Shared, rep.OnlyA, rep.OnlyB)
	}
	// Gaps: A shares browsing history; B collects voiceprints.
	foundShare, foundVoice := false, false
	for _, g := range rep.OnlyA {
		if g.Action == "share" && g.DataType == "browsing history" {
			foundShare = true
		}
		if g.DataType == "gps location" {
			t.Errorf("gps location should have matched location information: %+v", rep.OnlyA)
		}
	}
	for _, g := range rep.OnlyB {
		if g.DataType == "voiceprint" {
			foundVoice = true
		}
	}
	if !foundShare {
		t.Errorf("browsing-history share gap missing: %+v", rep.OnlyA)
	}
	if !foundVoice {
		t.Errorf("voiceprint gap missing: %+v", rep.OnlyB)
	}
}

func TestCompareSelfIsGapless(t *testing.T) {
	c := &Comparer{Model: embed.NewModel("text-embedding-sim"), Client: llm.NewSim()}
	k := analyze(t, policyA)
	rep := c.Compare(k, k)
	if len(rep.OnlyA) != 0 || len(rep.OnlyB) != 0 {
		t.Errorf("self comparison has gaps: %+v / %+v", rep.OnlyA, rep.OnlyB)
	}
	if rep.Shared == 0 {
		t.Error("self comparison shares nothing")
	}
}

func TestCompareDenyExcluded(t *testing.T) {
	const withDeny = `# GammaCo Privacy Policy

GammaCo ("we") explains.

We do not sell your email address.`
	c := &Comparer{Model: embed.NewModel("text-embedding-sim"), Client: llm.NewSim()}
	rep := c.Compare(analyze(t, withDeny), analyze(t, policyB))
	for _, g := range rep.OnlyA {
		if g.Action == "share" && g.DataType == "email address" {
			t.Errorf("denied practice counted as disclosure: %+v", g)
		}
	}
}
