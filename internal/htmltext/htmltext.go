// Package htmltext converts HTML privacy policies into the plain-text
// form the pipeline ingests: headings become markdown "#" lines (so
// segmentation keeps section context), list items become bullets, block
// elements become paragraph breaks, scripts/styles are dropped, and
// entities are decoded. It is a small hand-rolled tokenizer over the
// standard library only — enough for the well-formed HTML policy pages
// companies publish, not a general browser parser.
package htmltext

import (
	"strconv"
	"strings"
	"unicode/utf8"
)

// blockTags force paragraph breaks around their content.
var blockTags = map[string]bool{
	"p": true, "div": true, "section": true, "article": true, "table": true,
	"tr": true, "ul": true, "ol": true, "br": true, "blockquote": true,
	"header": true, "footer": true, "main": true,
}

// headingLevel maps heading tags to markdown depth.
var headingLevel = map[string]int{
	"h1": 1, "h2": 2, "h3": 3, "h4": 4, "h5": 5, "h6": 6,
}

// skipTags have their entire content dropped.
var skipTags = map[string]bool{
	"script": true, "style": true, "noscript": true, "head": true,
	"nav": true, "svg": true,
}

// Extract converts an HTML document to pipeline-ready text.
func Extract(html string) string {
	var out strings.Builder
	var text strings.Builder
	skipDepth := 0
	headingDepth := 0

	flushParagraph := func() {
		s := strings.TrimSpace(collapseSpaces(text.String()))
		text.Reset()
		if s == "" {
			return
		}
		if headingDepth > 0 {
			out.WriteString(strings.Repeat("#", headingDepth) + " " + s + "\n\n")
		} else {
			out.WriteString(s + "\n\n")
		}
	}

	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				j = len(html) - i
			}
			if skipDepth == 0 {
				text.WriteString(decodeEntities(html[i : i+j]))
			}
			i += j
			continue
		}
		// Comment?
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i:], "-->")
			if end < 0 {
				break
			}
			i += end + 3
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tag := html[i+1 : i+end]
		i += end + 1
		closing := strings.HasPrefix(tag, "/")
		name := tagName(tag)
		switch {
		case skipTags[name]:
			if closing {
				if skipDepth > 0 {
					skipDepth--
				}
			} else if !strings.HasSuffix(tag, "/") {
				skipDepth++
			}
		case headingLevel[name] > 0:
			flushParagraph()
			if closing {
				headingDepth = 0
			} else {
				headingDepth = headingLevel[name]
			}
		case name == "li":
			flushParagraph()
			if !closing {
				text.WriteString("- ")
			}
		case blockTags[name]:
			flushParagraph()
		case name == "td" || name == "th":
			text.WriteByte(' ')
		}
	}
	flushParagraph()
	return strings.TrimSpace(out.String()) + "\n"
}

// tagName extracts the lowercase element name from tag innards.
func tagName(tag string) string {
	tag = strings.TrimPrefix(tag, "/")
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '/' {
			return strings.ToLower(tag[:i])
		}
	}
	return strings.ToLower(tag)
}

// namedEntities covers the entities common in policy pages.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "mdash": "—", "ndash": "–", "hellip": "…",
	"rsquo": "'", "lsquo": "'", "rdquo": "”", "ldquo": "“", "copy": "©",
}

// decodeEntities decodes named and numeric character references.
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		switch {
		case strings.HasPrefix(ref, "#x") || strings.HasPrefix(ref, "#X"):
			if n, err := strconv.ParseInt(ref[2:], 16, 32); err == nil && utf8.ValidRune(rune(n)) {
				b.WriteRune(rune(n))
				i += semi + 1
				continue
			}
		case strings.HasPrefix(ref, "#"):
			if n, err := strconv.ParseInt(ref[1:], 10, 32); err == nil && utf8.ValidRune(rune(n)) {
				b.WriteRune(rune(n))
				i += semi + 1
				continue
			}
		default:
			if rep, ok := namedEntities[ref]; ok {
				b.WriteString(rep)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// collapseSpaces normalizes runs of whitespace to single spaces.
func collapseSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
