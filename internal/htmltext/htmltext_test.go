package htmltext

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
)

const samplePage = `<!DOCTYPE html>
<html><head><title>ignored</title><style>.x{color:red}</style></head>
<body>
<nav><a href="/">skip this nav</a></nav>
<h1>Acme Privacy Policy</h1>
<p>This Privacy Policy describes how Acme (&quot;we&quot;) handles your information.</p>
<h2>Information We Collect</h2>
<p>We collect your email&nbsp;address. We collect device identifiers automatically.</p>
<ul>
  <li>We collect crash logs.</li>
  <li>We collect your IP address.</li>
</ul>
<h2>Sharing</h2>
<p>We share usage data with service providers for legitimate business purposes.</p>
<script>trackEverything();</script>
<!-- internal note: do not ship -->
</body></html>`

func TestExtractStructure(t *testing.T) {
	text := Extract(samplePage)
	for _, want := range []string{
		"# Acme Privacy Policy",
		"## Information We Collect",
		`This Privacy Policy describes how Acme ("we") handles your information.`,
		"We collect your email address.",
		"- We collect crash logs.",
		"- We collect your IP address.",
		"## Sharing",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("extracted text missing %q:\n%s", want, text)
		}
	}
	for _, banned := range []string{"trackEverything", "skip this nav", "color:red", "internal note", "ignored"} {
		if strings.Contains(text, banned) {
			t.Errorf("extracted text leaked %q", banned)
		}
	}
}

func TestExtractFeedsPipeline(t *testing.T) {
	text := Extract(samplePage)
	e := extract.New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Company != "Acme" {
		t.Errorf("company = %q", ex.Company)
	}
	if len(ex.Practices) < 5 {
		t.Errorf("practices = %d: %+v", len(ex.Practices), ex.Practices)
	}
	foundVague := false
	for _, p := range ex.Practices {
		if len(p.VagueTerms) > 0 {
			foundVague = true
		}
	}
	if !foundVague {
		t.Error("vague condition lost through HTML ingestion")
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":      "a & b",
		"&lt;tag&gt;":    "<tag>",
		"x&nbsp;y":       "x y",
		"&#65;&#66;":     "AB",
		"&#x43;":         "C",
		"&unknown; stay": "&unknown; stay",
		"no entities":    "no entities",
		"dangling &":     "dangling &",
	}
	for in, want := range cases {
		if got := decodeEntities(in); got != want {
			t.Errorf("decodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractMalformed(t *testing.T) {
	for _, src := range []string{
		"", "<p>unclosed", "no tags at all", "<><><>", "<!-- unterminated",
		"<p>text<script>evil(", "&#xZZ; weird",
	} {
		// Must not panic; result is best-effort text.
		_ = Extract(src)
	}
}

func TestExtractProperty(t *testing.T) {
	// No output ever contains tags or raw script bodies from skip regions.
	f := func(body string) bool {
		if len(body) > 1024 {
			return true
		}
		out := Extract("<p>" + body + "</p><script>SECRET()</script>")
		return !strings.Contains(out, "SECRET()")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
