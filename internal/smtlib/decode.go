package smtlib

import (
	"fmt"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// Problem is the logical content decoded from an SMT-LIB script: the symbol
// declarations and the asserted formulas, ready to hand to a solver.
type Problem struct {
	// Logic is the declared logic, if any.
	Logic string
	// Sorts lists declared sort names.
	Sorts []string
	// Consts lists declared constants (arity-0 U-valued functions).
	Consts []string
	// Funcs maps declared U-valued function symbols to arity.
	Funcs map[string]int
	// Preds maps declared Bool-valued function symbols to arity.
	Preds map[string]int
	// Asserts holds the asserted formulas in script order.
	Asserts []*fol.Formula
	// CheckSats counts (check-sat) commands encountered.
	CheckSats int
	// Placeholders lists predicate symbols flagged by the compiler as
	// uninterpreted ambiguity placeholders via set-info.
	Placeholders []string
}

// DecodeScript parses an SMT-LIB script and reconstructs the corresponding
// Problem. Only the command subset emitted by Compile plus push/pop and
// check-sat-assuming is understood; other commands are ignored.
func DecodeScript(src string) (*Problem, error) {
	cmds, err := Parse(src)
	if err != nil {
		return nil, err
	}
	p := &Problem{Funcs: map[string]int{}, Preds: map[string]int{}}
	for _, cmd := range cmds {
		if cmd.IsAtom() || len(cmd.List) == 0 {
			return nil, fmt.Errorf("smtlib: top-level atom %q", cmd.Atom)
		}
		switch cmd.Head() {
		case "set-logic":
			if len(cmd.List) > 1 {
				p.Logic = cmd.List[1].Atom
			}
		case "set-info":
			if len(cmd.List) == 3 && cmd.List[1].Atom == ":uninterpreted-placeholder" {
				p.Placeholders = append(p.Placeholders, cmd.List[2].Atom)
			}
		case "set-option", "exit", "get-model", "get-unsat-core", "push", "pop":
			// No logical content for decoding purposes.
		case "declare-sort":
			if len(cmd.List) < 2 {
				return nil, fmt.Errorf("smtlib: malformed declare-sort")
			}
			p.Sorts = append(p.Sorts, cmd.List[1].Atom)
		case "declare-const":
			if len(cmd.List) != 3 {
				return nil, fmt.Errorf("smtlib: malformed declare-const")
			}
			p.Consts = append(p.Consts, cmd.List[1].Atom)
		case "declare-fun":
			if len(cmd.List) != 4 || cmd.List[2].IsAtom() {
				return nil, fmt.Errorf("smtlib: malformed declare-fun")
			}
			name := cmd.List[1].Atom
			arity := len(cmd.List[2].List)
			if cmd.List[3].Atom == "Bool" {
				p.Preds[name] = arity
			} else if arity == 0 {
				p.Consts = append(p.Consts, name)
			} else {
				p.Funcs[name] = arity
			}
		case "assert":
			if len(cmd.List) != 2 {
				return nil, fmt.Errorf("smtlib: malformed assert")
			}
			f, err := p.toFormula(cmd.List[1], map[string]bool{})
			if err != nil {
				return nil, err
			}
			p.Asserts = append(p.Asserts, f)
		case "check-sat", "check-sat-assuming":
			p.CheckSats++
		default:
			// Unknown commands are skipped to stay permissive with
			// solver-specific extensions.
		}
	}
	return p, nil
}

// toFormula converts an asserted s-expression to FOL. vars tracks bound
// variable names in scope.
func (p *Problem) toFormula(e *SExpr, vars map[string]bool) (*fol.Formula, error) {
	if e.IsAtom() {
		switch e.Atom {
		case "true":
			return fol.True(), nil
		case "false":
			return fol.False(), nil
		}
		if _, ok := p.Preds[e.Atom]; ok {
			return p.pred(e.Atom), nil
		}
		return nil, fmt.Errorf("smtlib: undeclared boolean atom %q", e.Atom)
	}
	if len(e.List) == 0 {
		return nil, fmt.Errorf("smtlib: empty application")
	}
	head := e.Head()
	args := e.List[1:]
	switch head {
	case "not":
		if len(args) != 1 {
			return nil, fmt.Errorf("smtlib: not takes one argument")
		}
		f, err := p.toFormula(args[0], vars)
		if err != nil {
			return nil, err
		}
		return fol.Not(f), nil
	case "and", "or":
		subs := make([]*fol.Formula, len(args))
		for i, a := range args {
			f, err := p.toFormula(a, vars)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		if head == "and" {
			return fol.And(subs...), nil
		}
		return fol.Or(subs...), nil
	case "=>":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: => takes two arguments")
		}
		a, err := p.toFormula(args[0], vars)
		if err != nil {
			return nil, err
		}
		b, err := p.toFormula(args[1], vars)
		if err != nil {
			return nil, err
		}
		return fol.Implies(a, b), nil
	case "=":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: = takes two arguments")
		}
		// Boolean equality is iff; term equality is Eq. Decide by trying
		// terms first.
		ta, errA := p.toTerm(args[0], vars)
		tb, errB := p.toTerm(args[1], vars)
		if errA == nil && errB == nil {
			return fol.Eq(ta, tb), nil
		}
		fa, err := p.toFormula(args[0], vars)
		if err != nil {
			return nil, err
		}
		fb, err := p.toFormula(args[1], vars)
		if err != nil {
			return nil, err
		}
		return fol.Iff(fa, fb), nil
	case "distinct":
		if len(args) < 2 {
			return nil, fmt.Errorf("smtlib: distinct needs at least two arguments")
		}
		terms := make([]fol.Term, len(args))
		for i, a := range args {
			t, err := p.toTerm(a, vars)
			if err != nil {
				return nil, err
			}
			terms[i] = t
		}
		// Pairwise disequalities.
		var conj []*fol.Formula
		for i := 0; i < len(terms); i++ {
			for j := i + 1; j < len(terms); j++ {
				conj = append(conj, fol.Not(fol.Eq(terms[i], terms[j])))
			}
		}
		return fol.And(conj...), nil
	case "forall", "exists":
		if len(args) != 2 || args[0].IsAtom() {
			return nil, fmt.Errorf("smtlib: malformed quantifier")
		}
		// Multiple binders become nested quantifiers.
		binders := args[0].List
		names := make([]string, len(binders))
		for i, b := range binders {
			if b.IsAtom() || len(b.List) != 2 {
				return nil, fmt.Errorf("smtlib: malformed binder")
			}
			names[i] = b.List[0].Atom
			vars[names[i]] = true
		}
		body, err := p.toFormula(args[1], vars)
		for _, n := range names {
			delete(vars, n)
		}
		if err != nil {
			return nil, err
		}
		for i := len(names) - 1; i >= 0; i-- {
			if head == "forall" {
				body = fol.Forall(names[i], body)
			} else {
				body = fol.Exists(names[i], body)
			}
		}
		return body, nil
	default:
		if arity, ok := p.Preds[head]; ok {
			if len(args) != arity {
				return nil, fmt.Errorf("smtlib: predicate %q expects %d args, got %d", head, arity, len(args))
			}
			terms := make([]fol.Term, len(args))
			for i, a := range args {
				t, err := p.toTerm(a, vars)
				if err != nil {
					return nil, err
				}
				terms[i] = t
			}
			f := fol.Pred(head, terms...)
			f.Uninterpreted = p.isPlaceholder(head)
			return f, nil
		}
		return nil, fmt.Errorf("smtlib: unknown formula head %q", head)
	}
}

func (p *Problem) pred(name string) *fol.Formula {
	f := fol.Pred(name)
	f.Uninterpreted = p.isPlaceholder(name)
	return f
}

func (p *Problem) isPlaceholder(name string) bool {
	for _, ph := range p.Placeholders {
		if ph == name {
			return true
		}
	}
	return false
}

func (p *Problem) toTerm(e *SExpr, vars map[string]bool) (fol.Term, error) {
	if e.IsAtom() {
		if vars[e.Atom] {
			return fol.Var(e.Atom), nil
		}
		for _, c := range p.Consts {
			if c == e.Atom {
				return fol.Const(e.Atom), nil
			}
		}
		if _, ok := p.Preds[e.Atom]; ok {
			return fol.Term{}, fmt.Errorf("smtlib: %q is a predicate, not a term", e.Atom)
		}
		return fol.Term{}, fmt.Errorf("smtlib: undeclared constant %q", e.Atom)
	}
	head := e.Head()
	arity, ok := p.Funcs[head]
	if !ok {
		return fol.Term{}, fmt.Errorf("smtlib: unknown function %q", head)
	}
	if len(e.List)-1 != arity {
		return fol.Term{}, fmt.Errorf("smtlib: function %q expects %d args, got %d", head, arity, len(e.List)-1)
	}
	args := make([]fol.Term, arity)
	for i, a := range e.List[1:] {
		t, err := p.toTerm(a, vars)
		if err != nil {
			return fol.Term{}, err
		}
		args[i] = t
	}
	return fol.App(head, args...), nil
}
