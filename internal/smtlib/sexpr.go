// Package smtlib implements the SMT-LIB v2 surface syntax used to exchange
// problems with SMT solvers: an s-expression reader/printer, a script model
// (declarations, assertions, check-sat), and a compiler from the pipeline's
// FOL representation to a complete SMT-LIB script over an uninterpreted
// "U" sort — mirroring the paper's custom FOL -> SMT-LIB compiler.
package smtlib

import (
	"fmt"
	"strings"
	"unicode"
)

// SExpr is an s-expression: either an atom or a list.
type SExpr struct {
	// Atom is the token text for leaf expressions; empty for lists.
	Atom string
	// List holds child expressions; nil for atoms. A non-nil empty slice
	// is the empty list ().
	List []*SExpr
}

// A returns an atom expression.
func A(atom string) *SExpr { return &SExpr{Atom: atom} }

// L returns a list expression.
func L(items ...*SExpr) *SExpr {
	if items == nil {
		items = []*SExpr{}
	}
	return &SExpr{List: items}
}

// IsAtom reports whether e is an atom.
func (e *SExpr) IsAtom() bool { return e.List == nil }

// Head returns the first atom of a list (the operator), or the atom itself.
func (e *SExpr) Head() string {
	if e.IsAtom() {
		return e.Atom
	}
	if len(e.List) > 0 && e.List[0].IsAtom() {
		return e.List[0].Atom
	}
	return ""
}

// String renders the expression in SMT-LIB concrete syntax.
func (e *SExpr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *SExpr) write(b *strings.Builder) {
	if e.IsAtom() {
		b.WriteString(quoteSymbol(e.Atom))
		return
	}
	b.WriteByte('(')
	for i, it := range e.List {
		if i > 0 {
			b.WriteByte(' ')
		}
		it.write(b)
	}
	b.WriteByte(')')
}

// simpleSymbol reports whether s is a valid unquoted SMT-LIB simple symbol.
func simpleSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '~' || r == '!' || r == '@' || r == '$' || r == '%' ||
			r == '^' || r == '&' || r == '*' || r == '_' || r == '-' ||
			r == '+' || r == '=' || r == '<' || r == '>' || r == '.' ||
			r == '?' || r == '/' || unicode.IsLetter(r) || unicode.IsDigit(r)
		if !ok {
			return false
		}
		if i == 0 && unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// quoteSymbol renders a symbol, wrapping it in |...| when it is not a simple
// symbol (SMT-LIB quoted symbols may contain anything but | and \). String
// literals re-escape their interior quotes.
func quoteSymbol(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		body := s[1 : len(s)-1]
		return `"` + strings.ReplaceAll(body, `"`, `""`) + `"`
	}
	if simpleSymbol(s) || isReserved(s) || looksLikeLiteral(s) {
		return s
	}
	clean := strings.Map(func(r rune) rune {
		if r == '|' || r == '\\' {
			return '_'
		}
		return r
	}, s)
	return "|" + clean + "|"
}

func isReserved(s string) bool {
	switch s {
	case "assert", "check-sat", "declare-const", "declare-fun", "declare-sort",
		"define-fun", "exit", "get-model", "get-unsat-core", "pop", "push",
		"set-logic", "set-option", "set-info", "check-sat-assuming",
		"forall", "exists", "and", "or", "not", "=>", "=", "ite", "true",
		"false", "Bool", "let", "distinct":
		return true
	}
	return false
}

func looksLikeLiteral(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == ':' {
		return true
	}
	for _, r := range s {
		if !unicode.IsDigit(r) && r != '.' {
			return false
		}
	}
	return true
}

// Parse reads all top-level s-expressions from src. Comments (; to end of
// line) are skipped. It returns an error with position information on
// malformed input.
func Parse(src string) ([]*SExpr, error) {
	p := &parser{src: src}
	var out []*SExpr
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return out, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ParseOne reads exactly one s-expression from src.
func ParseOne(src string) (*SExpr, error) {
	es, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(es) != 1 {
		return nil, fmt.Errorf("smtlib: expected one expression, got %d", len(es))
	}
	return es[0], nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ';':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseExpr() (*SExpr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("smtlib: unexpected end of input at %d", p.pos)
	}
	switch c := p.src[p.pos]; c {
	case '(':
		p.pos++
		list := []*SExpr{}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("smtlib: unclosed list at %d", p.pos)
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return &SExpr{List: list}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
	case ')':
		return nil, fmt.Errorf("smtlib: unexpected ')' at %d", p.pos)
	case '|':
		end := strings.IndexByte(p.src[p.pos+1:], '|')
		if end < 0 {
			return nil, fmt.Errorf("smtlib: unterminated quoted symbol at %d", p.pos)
		}
		atom := p.src[p.pos+1 : p.pos+1+end]
		if strings.ContainsRune(atom, '\\') {
			return nil, fmt.Errorf("smtlib: backslash in quoted symbol at %d", p.pos)
		}
		p.pos += end + 2
		return A(atom), nil
	case '"':
		// String literal with "" escaping.
		i := p.pos + 1
		var b strings.Builder
		for i < len(p.src) {
			if p.src[i] == '"' {
				if i+1 < len(p.src) && p.src[i+1] == '"' {
					b.WriteByte('"')
					i += 2
					continue
				}
				lit := "\"" + b.String() + "\""
				p.pos = i + 1
				return A(lit), nil
			}
			b.WriteByte(p.src[i])
			i++
		}
		return nil, fmt.Errorf("smtlib: unterminated string at %d", p.pos)
	default:
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == '(' || c == ')' || c == ';' || c == '|' || c == '"' ||
				c == '\\' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				break
			}
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("smtlib: unexpected character %q at %d", p.src[p.pos], p.pos)
		}
		return A(p.src[start:p.pos]), nil
	}
}
