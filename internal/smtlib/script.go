package smtlib

import (
	"fmt"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// USort is the single uninterpreted sort over which all pipeline formulas
// are typed, matching the paper's encoding of entities and data types as an
// uninterpreted domain.
const USort = "U"

// Script is an SMT-LIB v2 script: an ordered list of commands.
type Script struct {
	// Commands holds the script's commands in order.
	Commands []*SExpr
}

// NewScript returns a script preloaded with the standard header the paper's
// compiler emits: logic and model production option.
func NewScript(logic string) *Script {
	s := &Script{}
	s.Add(L(A("set-logic"), A(logic)))
	s.Add(L(A("set-option"), A(":produce-models"), A("true")))
	return s
}

// Add appends a command.
func (s *Script) Add(cmd *SExpr) { s.Commands = append(s.Commands, cmd) }

// String renders the script, one command per line.
func (s *Script) String() string {
	var b strings.Builder
	for _, c := range s.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DeclareSort appends (declare-sort name 0).
func (s *Script) DeclareSort(name string) {
	s.Add(L(A("declare-sort"), A(name), A("0")))
}

// DeclareConst appends (declare-const name sort).
func (s *Script) DeclareConst(name, sort string) {
	s.Add(L(A("declare-const"), A(name), A(sort)))
}

// DeclareFun appends (declare-fun name (argSorts...) retSort).
func (s *Script) DeclareFun(name string, argSorts []string, retSort string) {
	args := make([]*SExpr, len(argSorts))
	for i, a := range argSorts {
		args[i] = A(a)
	}
	s.Add(L(A("declare-fun"), A(name), L(args...), A(retSort)))
}

// Assert appends (assert e).
func (s *Script) Assert(e *SExpr) { s.Add(L(A("assert"), e)) }

// CheckSat appends (check-sat).
func (s *Script) CheckSat() { s.Add(L(A("check-sat"))) }

// CheckSatAssuming appends (check-sat-assuming (lits...)).
func (s *Script) CheckSatAssuming(lits ...*SExpr) {
	s.Add(L(A("check-sat-assuming"), L(lits...)))
}

// Push and Pop append incremental-solving scope commands.
func (s *Script) Push() { s.Add(L(A("push"), A("1"))) }

// Pop appends (pop 1).
func (s *Script) Pop() { s.Add(L(A("pop"), A("1"))) }

// TermToSExpr converts a FOL term to its SMT-LIB rendering.
func TermToSExpr(t fol.Term) *SExpr {
	switch t.Kind {
	case fol.TermVar, fol.TermConst:
		return A(t.Name)
	case fol.TermApp:
		items := make([]*SExpr, 0, len(t.Args)+1)
		items = append(items, A(t.Name))
		for _, a := range t.Args {
			items = append(items, TermToSExpr(a))
		}
		return L(items...)
	default:
		panic(fmt.Sprintf("smtlib: bad term kind %d", t.Kind))
	}
}

// FormulaToSExpr converts a FOL formula to its SMT-LIB rendering. Quantified
// variables are sorted as USort.
func FormulaToSExpr(f *fol.Formula) *SExpr {
	switch f.Op {
	case fol.OpTrue:
		return A("true")
	case fol.OpFalse:
		return A("false")
	case fol.OpPred:
		if len(f.Terms) == 0 {
			return A(f.Pred)
		}
		items := make([]*SExpr, 0, len(f.Terms)+1)
		items = append(items, A(f.Pred))
		for _, t := range f.Terms {
			items = append(items, TermToSExpr(t))
		}
		return L(items...)
	case fol.OpEq:
		return L(A("="), TermToSExpr(f.Terms[0]), TermToSExpr(f.Terms[1]))
	case fol.OpNot:
		return L(A("not"), FormulaToSExpr(f.Sub[0]))
	case fol.OpAnd, fol.OpOr:
		op := "and"
		if f.Op == fol.OpOr {
			op = "or"
		}
		items := make([]*SExpr, 0, len(f.Sub)+1)
		items = append(items, A(op))
		for _, s := range f.Sub {
			items = append(items, FormulaToSExpr(s))
		}
		return L(items...)
	case fol.OpImplies:
		return L(A("=>"), FormulaToSExpr(f.Sub[0]), FormulaToSExpr(f.Sub[1]))
	case fol.OpIff:
		return L(A("="), FormulaToSExpr(f.Sub[0]), FormulaToSExpr(f.Sub[1]))
	case fol.OpForall, fol.OpExists:
		op := "forall"
		if f.Op == fol.OpExists {
			op = "exists"
		}
		binder := L(L(A(f.Bound), A(USort)))
		return L(A(op), binder, FormulaToSExpr(f.Sub[0]))
	default:
		panic(fmt.Sprintf("smtlib: bad op %d", f.Op))
	}
}

// CompileOptions controls Compile.
type CompileOptions struct {
	// Logic is the SMT-LIB logic name; defaults to "UF".
	Logic string
	// Comment, when non-empty, is emitted as a leading set-info line.
	Comment string
	// Negate asserts the negation of the formula, the standard encoding
	// for validity checking ("assert the negation of the implication").
	Negate bool
}

// Compile converts a FOL sentence into a complete SMT-LIB script: sort and
// symbol declarations inferred from the formula's signature, the assertion
// (negated when opts.Negate, the validity-checking convention from the
// paper), and a final check-sat. Free variables are rejected — callers must
// quantify or ground them first.
func Compile(f *fol.Formula, opts CompileOptions) (*Script, error) {
	if fv := fol.FreeVars(f); len(fv) > 0 {
		return nil, fmt.Errorf("smtlib: formula has free variables %v", fv)
	}
	sig, err := fol.SignatureOf(f)
	if err != nil {
		return nil, err
	}
	logic := opts.Logic
	if logic == "" {
		logic = "UF"
	}
	s := NewScript(logic)
	if opts.Comment != "" {
		s.Add(L(A("set-info"), A(":source"), A("\""+strings.ReplaceAll(opts.Comment, `"`, `'`)+"\"")))
	}
	s.DeclareSort(USort)

	for _, c := range sortedKeys(sig.Consts) {
		s.DeclareConst(c, USort)
	}
	for _, fn := range sortedKeysInt(sig.Funcs) {
		s.DeclareFun(fn, repeat(USort, sig.Funcs[fn]), USort)
	}
	for _, p := range sortedKeysInt(sig.Preds) {
		if sig.Uninterpreted[p] {
			s.Add(L(A("set-info"), A(":uninterpreted-placeholder"), A(p)))
		}
		s.DeclareFun(p, repeat(USort, sig.Preds[p]), "Bool")
	}
	body := FormulaToSExpr(f)
	if opts.Negate {
		body = L(A("not"), body)
	}
	s.Assert(body)
	s.CheckSat()
	return s, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysInt(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}
