package smtlib

import "testing"

// FuzzParse checks that the s-expression reader never panics and that any
// successfully parsed input re-prints to something that parses again to
// the same rendering (print/parse fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(set-logic UF)",
		"(assert (forall ((x U)) (=> (p x) (q x))))",
		"(declare-fun f (U U) Bool)",
		"; comment\n(check-sat)",
		`(set-info :source "quoted ""string""")`,
		"(a (b (c (d))))",
		"|quoted symbol|",
		"((((",
		"))))",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		exprs, err := Parse(src)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		for _, e := range exprs {
			printed := e.String()
			re, err := ParseOne(printed)
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", printed, err)
			}
			if re.String() != printed {
				t.Fatalf("print/parse not a fixpoint: %q -> %q", printed, re.String())
			}
		}
	})
}

// FuzzDecodeScript checks the script decoder never panics on arbitrary
// input.
func FuzzDecodeScript(f *testing.F) {
	f.Add("(declare-fun p () Bool)(assert p)(check-sat)")
	f.Add("(declare-sort U 0)(declare-const a U)(assert (= a a))")
	f.Add("(assert (forall ((x U)) x))")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = DecodeScript(src)
	})
}
