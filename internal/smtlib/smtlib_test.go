package smtlib

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

func TestParseRoundTrip(t *testing.T) {
	src := `(assert (forall ((x U)) (=> (user x) (share tiktok x))))`
	es, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("got %d exprs", len(es))
	}
	re, err := ParseOne(es[0].String())
	if err != nil {
		t.Fatal(err)
	}
	if re.String() != es[0].String() {
		t.Errorf("round trip mismatch: %q vs %q", re.String(), es[0].String())
	}
}

func TestParseComments(t *testing.T) {
	src := "; header comment\n(check-sat) ; trailing\n"
	es, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].Head() != "check-sat" {
		t.Errorf("parse = %v", es)
	}
}

func TestParseQuotedSymbol(t *testing.T) {
	es, err := Parse(`(declare-const |email address| U)`)
	if err != nil {
		t.Fatal(err)
	}
	if es[0].List[1].Atom != "email address" {
		t.Errorf("quoted symbol = %q", es[0].List[1].Atom)
	}
	// Printing re-quotes.
	if !strings.Contains(es[0].String(), "|email address|") {
		t.Errorf("print = %s", es[0])
	}
}

func TestParseString(t *testing.T) {
	es, err := Parse(`(set-info :source "a ""quoted"" policy")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(es[0].List[2].Atom, `quoted`) {
		t.Errorf("string atom = %q", es[0].List[2].Atom)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"(", ")", "(a (b)", "|unterminated", `"open`} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestFormulaToSExpr(t *testing.T) {
	f := fol.Forall("x", fol.Implies(
		fol.Pred("user", fol.Var("x")),
		fol.Or(
			fol.Pred("share", fol.Const("tiktok"), fol.Var("x")),
			fol.UninterpretedPred("required_by_law"),
		),
	))
	got := FormulaToSExpr(f).String()
	want := "(forall ((x U)) (=> (user x) (or (share tiktok x) required_by_law)))"
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestCompileDeclarations(t *testing.T) {
	f := fol.Exists("x", fol.And(
		fol.Pred("share", fol.Const("tiktok"), fol.App("dataOf", fol.Var("x"))),
		fol.UninterpretedPred("legitimate_business_purpose"),
	))
	s, err := Compile(f, CompileOptions{Negate: true, Comment: "test query"})
	if err != nil {
		t.Fatal(err)
	}
	text := s.String()
	for _, want := range []string{
		"(set-logic UF)",
		"(declare-sort U 0)",
		"(declare-const tiktok U)",
		"(declare-fun dataOf (U) U)",
		"(declare-fun share (U U) Bool)",
		"(declare-fun legitimate_business_purpose () Bool)",
		"(set-info :uninterpreted-placeholder legitimate_business_purpose)",
		"(assert (not (exists ((x U))",
		"(check-sat)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("script missing %q:\n%s", want, text)
		}
	}
}

func TestCompileRejectsFreeVars(t *testing.T) {
	if _, err := Compile(fol.Pred("p", fol.Var("x")), CompileOptions{}); err == nil {
		t.Error("expected free-variable error")
	}
}

func TestDecodeScriptRoundTrip(t *testing.T) {
	f := fol.Forall("x", fol.Implies(
		fol.Pred("user", fol.Var("x")),
		fol.Or(
			fol.Pred("share", fol.Const("tiktok"), fol.Var("x")),
			fol.UninterpretedPred("required_by_law"),
		),
	))
	s, err := Compile(f, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeScript(s.String())
	if err != nil {
		t.Fatalf("decode: %v\nscript:\n%s", err, s)
	}
	if p.Logic != "UF" || p.CheckSats != 1 {
		t.Errorf("logic=%q checksats=%d", p.Logic, p.CheckSats)
	}
	if len(p.Asserts) != 1 {
		t.Fatalf("asserts = %d", len(p.Asserts))
	}
	if !p.Asserts[0].Equal(f) {
		t.Errorf("decoded formula %s != original %s", p.Asserts[0], f)
	}
	// Placeholder tag survives the round trip.
	ua := p.Asserts[0].UninterpretedAtoms()
	if len(ua) != 1 || ua[0] != "required_by_law" {
		t.Errorf("placeholders lost: %v (decl list %v)", ua, p.Placeholders)
	}
}

func TestDecodeMultiBinder(t *testing.T) {
	src := `
(declare-sort U 0)
(declare-fun p (U U) Bool)
(assert (forall ((x U) (y U)) (p x y)))
(check-sat)`
	p, err := DecodeScript(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Asserts[0]
	if f.Op != fol.OpForall || f.Sub[0].Op != fol.OpForall {
		t.Errorf("multi-binder not nested: %s", f)
	}
}

func TestDecodeBooleanEquality(t *testing.T) {
	src := `
(declare-fun a () Bool)
(declare-fun b () Bool)
(assert (= a b))
(check-sat)`
	p, err := DecodeScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Asserts[0].Op != fol.OpIff {
		t.Errorf("boolean = should decode to Iff: %s", p.Asserts[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, src := range []string{
		`(assert undeclared)`,
		`(declare-fun p (U) Bool)(assert (p a))`, // undeclared constant a
		`(declare-fun p () Bool)(assert (p x))`,  // arity mismatch
	} {
		if _, err := DecodeScript(src); err == nil {
			t.Errorf("DecodeScript(%q) should fail", src)
		}
	}
}

func TestQuoteSymbol(t *testing.T) {
	if got := quoteSymbol("simple_symbol"); got != "simple_symbol" {
		t.Errorf("simple symbol quoted: %q", got)
	}
	if got := quoteSymbol("has space"); got != "|has space|" {
		t.Errorf("complex symbol not quoted: %q", got)
	}
}

func TestScriptIncrementalCommands(t *testing.T) {
	s := NewScript("UF")
	s.Push()
	s.CheckSatAssuming(A("a"), L(A("not"), A("b")))
	s.Pop()
	text := s.String()
	for _, want := range []string{"(push 1)", "(check-sat-assuming (a (not b)))", "(pop 1)"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// Property: printing then parsing an arbitrary tree of safe atoms is the
// identity.
func TestSExprRoundTripProperty(t *testing.T) {
	f := func(depth uint8, widths []uint8) bool {
		e := buildTree(int(depth%4), widths, 0)
		re, err := ParseOne(e.String())
		if err != nil {
			return false
		}
		return re.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildTree(depth int, widths []uint8, idx int) *SExpr {
	if depth == 0 || len(widths) == 0 {
		return A("a" + string(rune('a'+idx%26)))
	}
	w := int(widths[idx%len(widths)])%3 + 1
	items := make([]*SExpr, w)
	for i := range items {
		items[i] = buildTree(depth-1, widths, idx+i+1)
	}
	return L(items...)
}

func TestDecodeDistinct(t *testing.T) {
	src := `
(declare-sort U 0)
(declare-const a U)
(declare-const b U)
(declare-const c U)
(assert (distinct a b c))
(check-sat)`
	p, err := DecodeScript(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Asserts[0]
	if f.Op != fol.OpAnd || len(f.Sub) != 3 {
		t.Fatalf("distinct decoded to %s", f)
	}
	for _, s := range f.Sub {
		if s.Op != fol.OpNot || s.Sub[0].Op != fol.OpEq {
			t.Errorf("distinct clause = %s", s)
		}
	}
	if _, err := DecodeScript(`(declare-const a U)(assert (distinct a))`); err == nil {
		t.Error("unary distinct should fail")
	}
}
