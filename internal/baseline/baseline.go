// Package baseline implements simplified analogs of the prior systems the
// paper positions itself against, for comparison experiments:
//
//   - PolicyLint-style contradiction detection (allow/deny pairs on the
//     same practice), which flags exception patterns as apparent
//     contradictions;
//   - PoliGraph-style knowledge-graph matching, which answers queries by
//     graph lookup without conditions or formal semantics;
//   - Polisis-style fixed-taxonomy classification over OPP-115, which
//     cannot place novel data types.
package baseline

import (
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/segment"
)

// Contradiction is one allow/deny pair flagged by the PolicyLint-style
// detector.
type Contradiction struct {
	// Allow and Deny are the conflicting practices.
	Allow extract.Practice
	Deny  extract.Practice
	// ExceptionPattern reports whether at least one side carries a
	// condition — the "apparent contradictions [that] were actually
	// coherent exception patterns" of PolicyLint's manual review.
	ExceptionPattern bool
}

// LintReport summarizes contradiction detection over one policy.
type LintReport struct {
	// Apparent is every allow/deny conflict found by naive pairing.
	Apparent []Contradiction
	// Genuine counts conflicts with no conditions on either side.
	Genuine int
	// Exceptions counts conflicts explained by a condition.
	Exceptions int
}

// Lint runs PolicyLint-style contradiction detection: practices are paired
// naively on (action, data type with subsumption-free string match); each
// allow/deny pair is an apparent contradiction. Condition-aware refinement
// then classifies pairs as exception patterns.
func Lint(practices []extract.Practice) LintReport {
	var report LintReport
	byKey := map[string][]extract.Practice{}
	for _, p := range practices {
		key := nlp.VerbBase(firstWord(p.Action)) + "\x1f" + nlp.CanonicalTerm(p.DataType)
		byKey[key] = append(byKey[key], p)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := byKey[k]
		for i, a := range group {
			if a.Permission != "allow" {
				continue
			}
			for j, d := range group {
				if i == j || d.Permission != "deny" {
					continue
				}
				c := Contradiction{
					Allow:            a,
					Deny:             d,
					ExceptionPattern: a.Condition != "" || d.Condition != "",
				}
				report.Apparent = append(report.Apparent, c)
				if c.ExceptionPattern {
					report.Exceptions++
				} else {
					report.Genuine++
				}
			}
		}
	}
	return report
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// PoliGraph is the baseline knowledge graph: triples without conditions,
// permissions or formal semantics.
type PoliGraph struct {
	g *graph.Graph
}

// BuildPoliGraph constructs the baseline graph from extracted practices,
// discarding conditions and permissions (the information PoliGraph's
// representation does not model).
func BuildPoliGraph(practices []extract.Practice) *PoliGraph {
	g := graph.New()
	for _, p := range practices {
		if p.DataType == "" || p.Sender == "" {
			continue
		}
		g.AddEdge(graph.Edge{
			From:  nlp.CanonicalTerm(p.Sender),
			To:    nlp.CanonicalTerm(p.DataType),
			Label: nlp.VerbBase(firstWord(p.Action)),
		})
	}
	return &PoliGraph{g: g}
}

// NumEdges returns the triple count.
func (p *PoliGraph) NumEdges() int { return p.g.NumEdges() }

// Answer reports whether the graph contains a matching triple. Unlike the
// full pipeline it cannot express conditions: a conditional practice and an
// unconditional one answer identically, and deny statements are
// indistinguishable from allows — the precision loss the paper's design
// avoids.
func (p *PoliGraph) Answer(actor, action, data string) bool {
	actor = nlp.CanonicalTerm(actor)
	action = nlp.VerbBase(firstWord(action))
	data = nlp.CanonicalTerm(data)
	for _, e := range p.g.Out(actor) {
		if e.Label == action && e.To == data {
			return true
		}
	}
	return false
}

// Classification is the Polisis-style per-segment OPP-115 labeling.
type Classification struct {
	// Segment is the statement classified.
	Segment segment.Segment
	// Categories are the OPP-115 labels.
	Categories []string
}

// Classify labels each segment with OPP-115 categories by keyword cueing.
func Classify(segs []segment.Segment) []Classification {
	out := make([]Classification, len(segs))
	for i, s := range segs {
		out[i] = Classification{Segment: s, Categories: corpus.MatchOPP115(s.Text)}
	}
	return out
}

// fixedDataCategories is the closed data-type vocabulary of a
// fixed-taxonomy system (an OPP-115-era attribute list).
var fixedDataCategories = []string{
	"contact", "email", "phone", "name", "address", "location", "cookie",
	"ip address", "device", "demographic", "financial", "health",
	"survey", "social media", "user profile", "browsing", "purchase",
}

// CoverageReport quantifies how much of a term vocabulary a fixed taxonomy
// can place — the evolving-terminology failure (Challenge 2).
type CoverageReport struct {
	// Total is the number of distinct terms examined.
	Total int
	// Covered is how many matched a fixed category.
	Covered int
	// Uncovered lists the novel terms the fixed taxonomy cannot place.
	Uncovered []string
}

// FixedTaxonomyCoverage classifies data-type terms against the closed
// vocabulary.
func FixedTaxonomyCoverage(terms []string) CoverageReport {
	rep := CoverageReport{Total: len(terms)}
	for _, t := range terms {
		lower := strings.ToLower(t)
		matched := false
		for _, cat := range fixedDataCategories {
			if strings.Contains(lower, cat) {
				matched = true
				break
			}
		}
		if matched {
			rep.Covered++
		} else {
			rep.Uncovered = append(rep.Uncovered, t)
		}
	}
	sort.Strings(rep.Uncovered)
	return rep
}
