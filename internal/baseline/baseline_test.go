package baseline

import (
	"context"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/segment"
)

func practice(action, data, perm, cond string) extract.Practice {
	return extract.Practice{ParamSet: llm.ParamSet{
		Sender: "Acme", Receiver: "third party", Subject: "user",
		DataType: data, Action: action, Permission: perm, Condition: cond,
	}}
}

func TestLintFindsApparentContradiction(t *testing.T) {
	ps := []extract.Practice{
		practice("share", "location data", "allow", ""),
		practice("share", "location data", "deny", ""),
	}
	rep := Lint(ps)
	if len(rep.Apparent) != 1 || rep.Genuine != 1 || rep.Exceptions != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestLintClassifiesExceptionPattern(t *testing.T) {
	// "We don't share location data" + "We share location data with
	// mapping services [if you enable location]": PolicyLint flags it;
	// condition-aware review recognizes the exception.
	ps := []extract.Practice{
		practice("share", "location data", "deny", ""),
		practice("share", "location data", "allow", "you enable location services"),
	}
	rep := Lint(ps)
	if len(rep.Apparent) != 1 {
		t.Fatalf("apparent = %d", len(rep.Apparent))
	}
	if rep.Exceptions != 1 || rep.Genuine != 0 {
		t.Errorf("exception not recognized: %+v", rep)
	}
}

func TestLintIgnoresDifferentData(t *testing.T) {
	ps := []extract.Practice{
		practice("share", "email address", "allow", ""),
		practice("share", "location data", "deny", ""),
	}
	if rep := Lint(ps); len(rep.Apparent) != 0 {
		t.Errorf("false positive: %+v", rep)
	}
}

func TestLintNormalizesActionForms(t *testing.T) {
	ps := []extract.Practice{
		practice("shares", "email addresses", "allow", ""),
		practice("share", "email address", "deny", ""),
	}
	if rep := Lint(ps); len(rep.Apparent) != 1 {
		t.Errorf("inflection defeated matching: %+v", rep)
	}
}

func TestPoliGraphAnswer(t *testing.T) {
	ps := []extract.Practice{
		practice("share", "email address", "allow", ""),
		practice("share", "usage data", "allow", "legitimate business purposes"),
		practice("sell", "personal information", "deny", ""),
	}
	pg := BuildPoliGraph(ps)
	if pg.NumEdges() != 3 {
		t.Fatalf("edges = %d", pg.NumEdges())
	}
	if !pg.Answer("Acme", "share", "email address") {
		t.Error("direct triple not found")
	}
	if pg.Answer("Acme", "share", "medical records") {
		t.Error("phantom triple")
	}
	// The precision losses: conditions invisible, denials look like
	// practices.
	if !pg.Answer("Acme", "share", "usage data") {
		t.Error("conditional practice should match indistinguishably")
	}
	if !pg.Answer("Acme", "sell", "personal information") {
		t.Error("denied practice matches as if allowed — the baseline's documented flaw")
	}
}

func TestClassify(t *testing.T) {
	segs := segment.Split("We collect your email. We share data with third party partners. You can opt out.")
	cs := Classify(segs)
	if len(cs) != 3 {
		t.Fatalf("classified %d", len(cs))
	}
	if cs[0].Categories[0] != "First Party Collection/Use" {
		t.Errorf("seg 0 = %v", cs[0].Categories)
	}
	if cs[1].Categories[0] != "Third Party Sharing/Collection" {
		t.Errorf("seg 1 = %v", cs[1].Categories)
	}
}

func TestFixedTaxonomyCoverage(t *testing.T) {
	rep := FixedTaxonomyCoverage([]string{
		"email address",            // covered
		"gps location",             // covered (location)
		"neural network embedding", // novel
		"voiceprint",               // novel
	})
	if rep.Total != 4 || rep.Covered != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Uncovered) != 2 || rep.Uncovered[0] != "neural network embedding" {
		t.Errorf("uncovered = %v", rep.Uncovered)
	}
}

func TestLintOnRealExtraction(t *testing.T) {
	policyText := `# Acme Privacy Policy

Acme ("we") explains its practices here.

## Sharing

We do not share your location data.

If you enable location services, we share your location data with mapping services.`
	e := extract.New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), policyText)
	if err != nil {
		t.Fatal(err)
	}
	rep := Lint(ex.Practices)
	if len(rep.Apparent) == 0 {
		t.Fatalf("no contradiction found over %d practices: %+v", len(ex.Practices), ex.Practices)
	}
	if rep.Exceptions == 0 {
		t.Errorf("exception pattern not recognized: %+v", rep.Apparent)
	}
}

func TestAnalyzeFleet(t *testing.T) {
	policies := []string{
		"# AppOne Privacy Policy\n\nAppOne (\"we\") explains.\n\nWe collect your gps location. We share your email address with partners. We do not sell your browsing history.\n",
		"# AppTwo Privacy Policy\n\nAppTwo (\"we\") explains.\n\nWe collect your device identifier and credit card number.\n",
		"# AppThree Privacy Policy\n\nAppThree (\"we\") explains.\n\nThis app stores nothing interesting in this sentence.\n",
	}
	stats, err := AnalyzeFleet(context.Background(), policies)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policies != 3 {
		t.Fatalf("policies = %d", stats.Policies)
	}
	if got := stats.CollectRates["location"]; got < 0.3 || got > 0.34 {
		t.Errorf("location collect rate = %v, want 1/3", got)
	}
	if got := stats.ShareRates["email"]; got < 0.3 || got > 0.34 {
		t.Errorf("email share rate = %v, want 1/3", got)
	}
	if got := stats.DenySaleRate; got < 0.3 || got > 0.34 {
		t.Errorf("deny-sale rate = %v, want 1/3", got)
	}
	top := stats.TopCategories()
	if len(top) == 0 {
		t.Fatal("no top categories")
	}
}

func TestFleetCategory(t *testing.T) {
	cases := map[string]string{
		"gps location":        "location",
		"email address":       "email",
		"credit card number":  "financial",
		"voiceprint":          "biometric",
		"watch history":       "history",
		"device identifier":   "device",
		"something unrelated": "",
	}
	for in, want := range cases {
		if got := fleetCategory(in); got != want {
			t.Errorf("fleetCategory(%q) = %q, want %q", in, got, want)
		}
	}
}
