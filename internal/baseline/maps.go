package baseline

import (
	"context"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// FleetStats is the MAPS-style aggregate over a fleet of policies: which
// fractions of apps collect/share which data categories (MAPS analyzed
// over a million Android apps this way).
type FleetStats struct {
	// Policies analyzed.
	Policies int
	// CollectRates maps a data-category keyword to the fraction of
	// policies with at least one collection practice touching it.
	CollectRates map[string]float64
	// ShareRates is the sharing analog.
	ShareRates map[string]float64
	// DenySaleRate is the fraction of policies explicitly denying sale.
	DenySaleRate float64
	// VagueRate is the fraction of policies containing at least one vague
	// condition — the Usable Privacy Policy Project reports such language
	// in over 75% of policies (§1).
	VagueRate float64
}

// fleetCategories are the data categories MAPS-style analysis aggregates.
var fleetCategories = []string{"location", "contact", "email", "device", "financial", "biometric", "history"}

// AnalyzeFleet extracts each policy and aggregates category rates.
func AnalyzeFleet(ctx context.Context, policies []string) (FleetStats, error) {
	stats := FleetStats{
		Policies:     len(policies),
		CollectRates: map[string]float64{},
		ShareRates:   map[string]float64{},
	}
	collectCounts := map[string]int{}
	shareCounts := map[string]int{}
	denySale := 0
	vague := 0
	for _, text := range policies {
		e := extract.New(llm.NewCachingClient(llm.NewSim()))
		ex, err := e.ExtractPolicy(ctx, text)
		if err != nil {
			return stats, err
		}
		collected := map[string]bool{}
		shared := map[string]bool{}
		sawDenySale := false
		sawVague := false
		for _, p := range ex.Practices {
			if len(p.VagueTerms) > 0 {
				sawVague = true
			}
			cat := fleetCategory(p.DataType)
			if cat == "" {
				continue
			}
			switch classifyVerb(p.Action) {
			case "collect":
				collected[cat] = true
			case "share":
				if p.Permission == "deny" && nlp.VerbBase(p.Action) == "sell" {
					sawDenySale = true
				} else if p.Permission == "allow" {
					shared[cat] = true
				}
			}
			if p.Permission == "deny" && nlp.VerbBase(firstWordOfAction(p.Action)) == "sell" {
				sawDenySale = true
			}
		}
		for c := range collected {
			collectCounts[c]++
		}
		for c := range shared {
			shareCounts[c]++
		}
		if sawDenySale {
			denySale++
		}
		if sawVague {
			vague++
		}
	}
	if len(policies) > 0 {
		for _, c := range fleetCategories {
			stats.CollectRates[c] = float64(collectCounts[c]) / float64(len(policies))
			stats.ShareRates[c] = float64(shareCounts[c]) / float64(len(policies))
		}
		stats.DenySaleRate = float64(denySale) / float64(len(policies))
		stats.VagueRate = float64(vague) / float64(len(policies))
	}
	return stats, nil
}

func firstWordOfAction(a string) string {
	if i := strings.IndexByte(a, ' '); i > 0 {
		return a[:i]
	}
	return a
}

// fleetCategory buckets a data type into a MAPS category keyword.
func fleetCategory(dataType string) string {
	lower := strings.ToLower(dataType)
	for _, c := range fleetCategories {
		if strings.Contains(lower, c) {
			return c
		}
	}
	switch {
	case strings.Contains(lower, "gps") || strings.Contains(lower, "geolocation"):
		return "location"
	case strings.Contains(lower, "phone number") || strings.Contains(lower, "address"):
		return "contact"
	case strings.Contains(lower, "credit") || strings.Contains(lower, "payment") || strings.Contains(lower, "transaction"):
		return "financial"
	case strings.Contains(lower, "faceprint") || strings.Contains(lower, "voiceprint"):
		return "biometric"
	}
	return ""
}

// classifyVerb reduces an action to collect/share/other.
func classifyVerb(action string) string {
	base := nlp.VerbBase(firstWordOfAction(action))
	switch base {
	case "collect", "receive", "obtain", "gather", "record", "access", "capture", "track", "infer", "derive", "scan", "read":
		return "collect"
	case "share", "disclose", "sell", "transfer", "send", "provide", "give", "transmit", "release", "distribute":
		return "share"
	default:
		return "other"
	}
}

// TopCategories returns categories sorted by collection rate, descending.
func (f FleetStats) TopCategories() []string {
	out := append([]string(nil), fleetCategories...)
	sort.Slice(out, func(i, j int) bool {
		if f.CollectRates[out[i]] != f.CollectRates[out[j]] {
			return f.CollectRates[out[i]] > f.CollectRates[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
