// Package replica turns a quagmired process into a read follower: it
// bootstraps a local disk store from the primary's snapshot stream, tails
// the primary's WAL stream applying each CRC-framed record through the
// shared state machine, and keeps the applied watermark durable in its own
// WAL (primary sequence numbers are preserved verbatim, so recovery
// recomputes the watermark exactly like it recomputes local state).
//
// The tail loop is a supervision loop: a dropped connection or a torn
// frame discards the partial record and reconnects with jittered
// exponential backoff, resuming from the local watermark (delivery is
// at-least-once; the store skips duplicates). When the primary answers
// 410 Gone — it compacted past the follower's watermark — the follower
// re-bootstraps from a fresh snapshot and resumes tailing from the new
// watermark. Replication is asynchronous: a follower serves reads that
// may trail the primary by the current lag, and read-your-writes holds
// only on the primary.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/store"
)

// ErrReadOnly reports a write attempted against a follower's store facade.
// Writes belong on the primary; the HTTP layer translates this to 403.
var ErrReadOnly = errors.New("replica: store is read-only (writes go to the primary)")

// errGone signals the primary compacted past our watermark (HTTP 410).
var errGone = errors.New("replica: watermark compacted away on primary")

// Replication metric names.
const (
	metricLagSeq     = "quagmire_replica_lag_seq"
	metricLagSecs    = "quagmire_replica_lag_seconds"
	metricApplied    = "quagmire_replica_applied_seq"
	metricPrimary    = "quagmire_replica_primary_seq"
	metricReconnects = "quagmire_replica_reconnects_total"
	metricBootstraps = "quagmire_replica_bootstraps_total"
	metricRecords    = "quagmire_replica_records_applied_total"
)

// Options configures a follower.
type Options struct {
	// Primary is the primary's base URL (e.g. http://primary:8080);
	// required.
	Primary string
	// Dir is the follower's local data directory; required. A directory
	// that already holds a store resumes from its watermark; an empty one
	// bootstraps from the primary's snapshot.
	Dir string
	// Store configures the local disk store (metrics, compaction
	// threshold, sync policy).
	Store store.Options
	// Logger receives replication lifecycle logs; nil disables.
	Logger *log.Logger
	// Client issues the HTTP requests; nil selects a default with no
	// overall timeout (the WAL tail is a deliberately long-lived stream).
	Client *http.Client
	// BackoffMin/BackoffMax bound the jittered reconnect backoff; zero
	// selects 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
}

// Hooks are the serving layer's callbacks into the apply loop.
type Hooks struct {
	// OnApply runs after each record is durably applied — the server uses
	// it to install the policy's live engine cell.
	OnApply func(store.Record)
	// OnReload runs after a snapshot re-bootstrap replaced store state
	// wholesale; the server rebuilds its live map in it.
	OnReload func() error
}

// Status is the follower's replication self-report, rendered into
// /healthz on a follower.
type Status struct {
	Primary    string  `json:"primary"`
	Connected  bool    `json:"connected"`
	AppliedSeq uint64  `json:"applied_seq"`
	PrimarySeq uint64  `json:"primary_seq"`
	LagSeq     uint64  `json:"lag_seq"`
	LagSeconds float64 `json:"lag_seconds"`
	Reconnects uint64  `json:"reconnects"`
	Bootstraps uint64  `json:"bootstraps"`
}

// Follower is a replicated read store: it implements store.PolicyStore
// (reads delegate to the local disk store, writes fail with ErrReadOnly)
// and store.Replicator (so a follower can itself feed further followers),
// while a background loop keeps the local store converging on the
// primary. Create with New, start the loop with Start, stop with Close.
type Follower struct {
	opts   Options
	client *http.Client
	hooks  Hooks

	mu         sync.RWMutex
	disk       *store.Disk
	connected  bool
	primarySeq uint64
	lastApply  time.Time
	reconnects uint64
	bootstraps uint64

	cancel context.CancelFunc
	done   chan struct{}
	closed sync.Once
}

// New opens the follower's local store, bootstrapping it from the
// primary's snapshot endpoint when the directory holds no store yet. The
// tail loop does not start until Start — create the server over the
// returned Follower first, then hand its hooks to Start.
func New(opts Options) (*Follower, error) {
	if opts.Primary == "" || opts.Dir == "" {
		return nil, fmt.Errorf("replica: Primary and Dir are required")
	}
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	f := &Follower{opts: opts, client: opts.Client}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if !hasStore(opts.Dir) {
		if err := f.bootstrap(context.Background()); err != nil {
			return nil, err
		}
	}
	d, err := store.OpenDisk(opts.Dir, opts.Store)
	if err != nil {
		return nil, fmt.Errorf("replica: open local store: %w", err)
	}
	f.disk = d
	f.registerMetrics()
	f.logf("replica: local store at seq %d, primary %s", d.Seq(), opts.Primary)
	return f, nil
}

// hasStore reports whether dir already holds a snapshot or WAL to resume
// from.
func hasStore(dir string) bool {
	for _, name := range []string{"snapshot.v2", "wal.log"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logger != nil {
		f.opts.Logger.Printf(format, args...)
	}
}

func (f *Follower) registerMetrics() {
	reg := f.opts.Store.Obs
	if reg == nil {
		return
	}
	reg.SetHelp(metricLagSeq, "Sequence numbers the follower trails the primary by (0 = caught up).")
	reg.SetHelp(metricLagSecs, "Seconds since the lagging follower last applied a record (0 when caught up).")
	reg.GaugeFunc(metricLagSeq, func() float64 { return float64(f.Status().LagSeq) })
	reg.GaugeFunc(metricLagSecs, func() float64 { return f.Status().LagSeconds })
	reg.GaugeFunc(metricApplied, func() float64 { return float64(f.Seq()) })
	reg.GaugeFunc(metricPrimary, func() float64 { return float64(f.Status().PrimarySeq) })
	// Counters export from 0 rather than appearing on first increment.
	reg.Counter(metricReconnects)
	reg.Counter(metricBootstraps)
	reg.Counter(metricRecords)
}

// Start launches the tail loop. Call exactly once, after the serving
// layer exists to receive hooks.
func (f *Follower) Start(hooks Hooks) {
	f.hooks = hooks
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// run is the supervision loop: tail until the stream breaks, classify the
// failure, back off, repeat.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := f.opts.BackoffMin
	for {
		applied, err := f.tailOnce(ctx)
		f.setConnected(false)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errGone) {
			if berr := f.rebootstrap(ctx); berr != nil {
				f.logf("replica: re-bootstrap failed: %v", berr)
			} else {
				backoff = f.opts.BackoffMin
				continue
			}
		} else if err != nil && !errors.Is(err, io.EOF) {
			f.logf("replica: stream broke at seq %d: %v", f.Seq(), err)
		}
		if applied > 0 {
			backoff = f.opts.BackoffMin // forward progress resets the clock
		}
		f.countReconnect()
		// Full jitter: sleep a uniform fraction of the current ceiling so a
		// fleet of followers does not reconnect in lockstep after a primary
		// restart.
		sleep := time.Duration(rand.Int63n(int64(backoff))) + time.Millisecond
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.opts.BackoffMax {
			backoff = f.opts.BackoffMax
		}
	}
}

// tailOnce opens one WAL stream from the local watermark and applies
// records until it breaks. It returns how many records it applied and why
// the stream ended (io.EOF for a clean server-side close).
func (f *Follower) tailOnce(ctx context.Context) (int, error) {
	from := f.Seq()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.opts.Primary+"/v1/replicate/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, errGone
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("replica: primary answered %s: %s", resp.Status, body)
	}
	if hdr := resp.Header.Get("X-Quagmire-Seq"); hdr != "" {
		if seq, perr := strconv.ParseUint(hdr, 10, 64); perr == nil {
			f.notePrimarySeq(seq)
		}
	}
	f.setConnected(true)
	applied := 0
	rr := store.NewRecordReader(resp.Body)
	for {
		rec, err := rr.Next()
		if err != nil {
			// io.EOF is a clean close; ErrBadFrame is a record cut mid-flight.
			// Either way nothing partial was returned, the watermark is where
			// it was, and the reconnect re-requests from it.
			return applied, err
		}
		if err := f.apply(rec); err != nil {
			return applied, err
		}
		applied++
	}
}

// apply makes one record durable locally and runs the serving hook.
func (f *Follower) apply(rec store.Record) error {
	f.mu.RLock()
	d := f.disk
	f.mu.RUnlock()
	if err := d.ApplyRecord(rec); err != nil {
		return err
	}
	f.mu.Lock()
	if rec.Seq > f.primarySeq {
		f.primarySeq = rec.Seq
	}
	f.lastApply = time.Now()
	f.mu.Unlock()
	if reg := f.opts.Store.Obs; reg != nil {
		reg.Counter(metricRecords).Inc()
	}
	if f.hooks.OnApply != nil {
		f.hooks.OnApply(rec)
	}
	return nil
}

// bootstrap streams the primary's snapshot into the data directory. The
// local store must not be open.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.Primary+"/v1/replicate/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: fetch snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: snapshot fetch answered %s: %s", resp.Status, body)
	}
	seq, err := store.InstallSnapshot(f.opts.Dir, resp.Body)
	if err != nil {
		return err
	}
	if reg := f.opts.Store.Obs; reg != nil {
		reg.Counter(metricBootstraps).Inc()
	}
	f.mu.Lock()
	f.bootstraps++
	if seq > f.primarySeq {
		f.primarySeq = seq
	}
	f.mu.Unlock()
	f.logf("replica: bootstrapped snapshot at seq %d from %s", seq, f.opts.Primary)
	return nil
}

// rebootstrap replaces the local store wholesale after the primary
// compacted past our watermark: close the current store, install a fresh
// snapshot, reopen, and tell the serving layer to rebuild. Reads hitting
// the brief closed window fail with ErrClosed and retry; durability is
// never at risk (the old snapshot stays in place until the validated new
// one renames over it).
func (f *Follower) rebootstrap(ctx context.Context) error {
	f.logf("replica: watermark %d compacted away on primary; re-bootstrapping", f.Seq())
	f.mu.RLock()
	d := f.disk
	f.mu.RUnlock()
	if err := d.Close(); err != nil && !errors.Is(err, store.ErrClosed) {
		return fmt.Errorf("replica: close before re-bootstrap: %w", err)
	}
	if err := f.bootstrap(ctx); err != nil {
		// The old store is closed and the old snapshot still on disk; reopen
		// it so reads keep serving the stale-but-consistent state.
		if reopened, rerr := store.OpenDisk(f.opts.Dir, f.opts.Store); rerr == nil {
			f.swap(reopened)
		}
		return err
	}
	nd, err := store.OpenDisk(f.opts.Dir, f.opts.Store)
	if err != nil {
		return fmt.Errorf("replica: reopen after re-bootstrap: %w", err)
	}
	f.swap(nd)
	if f.hooks.OnReload != nil {
		if err := f.hooks.OnReload(); err != nil {
			f.logf("replica: serving-layer reload failed: %v", err)
		}
	}
	return nil
}

func (f *Follower) swap(d *store.Disk) {
	f.mu.Lock()
	f.disk = d
	f.mu.Unlock()
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	f.mu.Unlock()
}

func (f *Follower) notePrimarySeq(seq uint64) {
	f.mu.Lock()
	if seq > f.primarySeq {
		f.primarySeq = seq
	}
	f.mu.Unlock()
}

func (f *Follower) countReconnect() {
	f.mu.Lock()
	f.reconnects++
	f.mu.Unlock()
	if reg := f.opts.Store.Obs; reg != nil {
		reg.Counter(metricReconnects).Inc()
	}
}

// Status reports the follower's replication state.
func (f *Follower) Status() Status {
	applied := f.Seq()
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := Status{
		Primary:    f.opts.Primary,
		Connected:  f.connected,
		AppliedSeq: applied,
		PrimarySeq: f.primarySeq,
		Reconnects: f.reconnects,
		Bootstraps: f.bootstraps,
	}
	if st.PrimarySeq > applied {
		st.LagSeq = st.PrimarySeq - applied
		if !f.lastApply.IsZero() {
			st.LagSeconds = time.Since(f.lastApply).Seconds()
		}
	}
	return st
}

// StatusAny adapts Status for server.ReplicaOptions.Status.
func (f *Follower) StatusAny() any { return f.Status() }

// WaitFor blocks until the applied watermark reaches seq or ctx ends —
// the conformance suite's "lag reached 0" barrier.
func (f *Follower) WaitFor(ctx context.Context, seq uint64) error {
	for {
		if f.Seq() >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica: waiting for seq %d (at %d): %w", seq, f.Seq(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Kill stops the tail loop without closing the local store — the
// conformance suite's SIGKILL: no compaction, no flush, no goodbye. The
// abandoned store's files stay as the crash left them, and a new Follower
// over the same directory must recover the watermark by replay.
func (f *Follower) Kill() {
	if f.cancel != nil {
		f.cancel()
		<-f.done
	}
}

// Close stops the tail loop and closes the local store.
func (f *Follower) Close() error {
	var err error
	f.closed.Do(func() {
		if f.cancel != nil {
			f.cancel()
			<-f.done
		}
		f.mu.RLock()
		d := f.disk
		f.mu.RUnlock()
		err = d.Close()
	})
	return err
}

// --- store.PolicyStore facade: reads delegate, writes refuse. ---

func (f *Follower) store() *store.Disk {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.disk
}

// Create always fails: followers are read-only.
func (f *Follower) Create(string, store.Version) (store.Policy, error) {
	return store.Policy{}, ErrReadOnly
}

// AppendBatch always fails: followers are read-only.
func (f *Follower) AppendBatch([]store.BatchEntry) ([]store.Policy, error) {
	return nil, ErrReadOnly
}

// Append always fails: followers are read-only.
func (f *Follower) Append(string, int, store.Version) (store.Policy, error) {
	return store.Policy{}, ErrReadOnly
}

func (f *Follower) Get(id string) (store.Policy, error) { return f.store().Get(id) }
func (f *Follower) List() ([]store.Policy, error)       { return f.store().List() }
func (f *Follower) Versions(id string) ([]store.VersionMeta, error) {
	return f.store().Versions(id)
}
func (f *Follower) Version(id string, n int) (store.Version, error) {
	return f.store().Version(id, n)
}
func (f *Follower) LoadPayload(id string, n int) ([]byte, error) {
	return f.store().LoadPayload(id, n)
}

// Health reports the local store's health; the replication status itself
// travels in the /healthz replica section, not here.
func (f *Follower) Health() store.Health { return f.store().Health() }

// --- store.Replicator facade: a follower can feed further followers. ---

func (f *Follower) SnapshotTo(w io.Writer, started func(uint64)) (uint64, error) {
	return f.store().SnapshotTo(w, started)
}
func (f *Follower) ReplayFrom(seq uint64, fn func(store.Record) error) error {
	return f.store().ReplayFrom(seq, fn)
}
func (f *Follower) WaitSeq(ctx context.Context, after uint64) (uint64, error) {
	return f.store().WaitSeq(ctx, after)
}

// Seq is the follower's applied watermark.
func (f *Follower) Seq() uint64 { return f.store().Seq() }
