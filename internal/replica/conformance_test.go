package replica

// Differential fault-injection conformance suite: a primary and a
// follower run in-process with a chaos TCP proxy between them, a
// deterministic randomized workload writes through the primary, and the
// suite injects the faults replication must survive — connections cut
// mid-record, follower SIGKILL, primary crash-restart, and compaction
// racing a lagging follower. After every fault the one assertion that
// matters is differential: once lag reaches 0, the follower's observable
// state is byte-identical to the primary's and verdicts agree. Run under
// -race; the suite is also the concurrency proof for the stream handlers.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/server"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

func newPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// encodedPayloads analyzes a few small policies once and returns their
// encoded analysis payloads — real decodable payloads, cheap to reuse
// across the randomized workload.
func encodedPayloads(t *testing.T) [][]byte {
	t.Helper()
	p := newPipeline(t)
	texts := []string{
		corpus.Mini(),
		corpus.Generate(corpus.Config{Company: "RepA", Seed: 7, PracticeStatements: 6, DataRichness: 8, EntityRichness: 8}),
		corpus.Generate(corpus.Config{Company: "RepB", Seed: 11, PracticeStatements: 6, DataRichness: 8, EntityRichness: 8}),
	}
	out := make([][]byte, len(texts))
	for i, text := range texts {
		a, err := p.Analyze(context.Background(), text)
		if err != nil {
			t.Fatal(err)
		}
		data, err := core.EncodeAnalysis(a)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

// dumpStore renders everything observable through the PolicyStore
// interface as JSON — the differential unit of the whole suite.
func dumpStore(t *testing.T, s store.PolicyStore) string {
	t.Helper()
	out := map[string]any{}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	out["list"] = list
	for _, p := range list {
		vs, err := s.Versions(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		out["versions:"+p.ID] = vs
		for _, vm := range vs {
			payload, err := s.LoadPayload(p.ID, vm.N)
			if err != nil {
				t.Fatal(err)
			}
			out[fmt.Sprintf("payload:%s:%d", p.ID, vm.N)] = string(payload)
		}
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// chaosProxy is a TCP proxy between follower and primary that injects
// transport faults: per-connection byte budgets (the stream dies
// mid-record at an arbitrary byte boundary), hard connection drops, and
// a down mode that refuses everything. The proxy's own address is stable
// across primary restarts — followers only ever know the proxy.
type chaosProxy struct {
	ln      net.Listener
	backend atomic.Value // string host:port
	down    atomic.Bool
	budget  atomic.Int64 // backend->client bytes per connection; 0 = unlimited

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, conns: map[net.Conn]struct{}{}}
	p.backend.Store(backend)
	go p.acceptLoop()
	t.Cleanup(func() {
		ln.Close()
		p.dropAll()
	})
	return p
}

func (p *chaosProxy) url() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) setBackend(addr string) { p.backend.Store(addr) }

func (p *chaosProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.down.Load() {
			c.Close()
			continue
		}
		go p.serve(c)
	}
}

func (p *chaosProxy) serve(client net.Conn) {
	defer client.Close()
	backend, err := net.Dial("tcp", p.backend.Load().(string))
	if err != nil {
		return
	}
	defer backend.Close()
	p.mu.Lock()
	p.conns[client] = struct{}{}
	p.conns[backend] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, backend)
		p.mu.Unlock()
	}()
	go func() {
		_, _ = io.Copy(backend, client)
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	var r io.Reader = backend
	if budget := p.budget.Load(); budget > 0 {
		// The copy stops after budget bytes; the deferred closes then sever
		// the stream wherever that landed — usually mid-frame.
		r = io.LimitReader(backend, budget)
	}
	_, _ = io.Copy(client, r)
}

// dropAll severs every in-flight connection.
func (p *chaosProxy) dropAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// primaryNode is one incarnation of the primary process: disk store,
// server, HTTP listener.
type primaryNode struct {
	dir       string
	threshold int64
	disk      *store.Disk
	srv       *server.Server
	http      *httptest.Server
}

func startPrimary(t *testing.T, dir string, threshold int64) *primaryNode {
	t.Helper()
	d, err := store.OpenDisk(dir, store.Options{SnapshotThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Pipeline: newPipeline(t), Store: d})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return &primaryNode{dir: dir, threshold: threshold, disk: d, srv: srv, http: ts}
}

func (p *primaryNode) addr() string { return p.http.Listener.Addr().String() }

// crash kills the incarnation the hard way: HTTP connections severed,
// server stopped, and the store abandoned WITHOUT Close — no final
// compaction, exactly like SIGKILL. The WAL holds everything acked.
func (p *primaryNode) crash() {
	p.http.CloseClientConnections()
	p.http.Close()
	p.srv.Close()
	// p.disk deliberately not closed.
}

func TestReplicaConformanceUnderFaults(t *testing.T) {
	payloads := encodedPayloads(t)
	mkVersion := func(i int) store.Version {
		return store.Version{
			VersionMeta: store.VersionMeta{
				Company: fmt.Sprintf("Co%d", i%len(payloads)),
				Stats:   store.VersionStats{Nodes: 5 + i%7, Edges: 3 + i%5, Segments: 2, Practices: 1 + i%3},
			},
			Payload: payloads[i%len(payloads)],
		}
	}
	// Compaction threshold scaled to the payload size so the lag phase is
	// guaranteed to compact past the paused follower's watermark.
	threshold := int64(len(payloads[0]) * 4)

	pdir := t.TempDir()
	pri := startPrimary(t, pdir, threshold)
	t.Cleanup(func() { pri.crash() })
	proxy := newChaosProxy(t, pri.addr())

	// Deterministic randomized workload: create or append, tracked so the
	// suite can replay expectations. Plain LCG keeps it reproducible.
	var ids []string
	versions := map[string]int{}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	opCount := 0
	write := func(t *testing.T) {
		t.Helper()
		opCount++
		if len(ids) == 0 || next(10) < 6 {
			p, err := pri.disk.Create(fmt.Sprintf("pol-%d", opCount), mkVersion(opCount))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, p.ID)
			versions[p.ID] = 1
			return
		}
		id := ids[next(len(ids))]
		if _, err := pri.disk.Append(id, versions[id], mkVersion(opCount)); err != nil {
			t.Fatal(err)
		}
		versions[id]++
	}
	writeN := func(t *testing.T, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			write(t)
		}
	}

	fdir := t.TempDir()
	fol, err := New(Options{
		Primary:    proxy.url(),
		Dir:        fdir,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fol.Start(Hooks{})
	t.Cleanup(func() { fol.Close() })

	converge := func(t *testing.T, phase string) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := fol.WaitFor(ctx, pri.disk.Seq()); err != nil {
			t.Fatalf("%s: follower never caught up: %v (status %+v)", phase, err, fol.Status())
		}
		if got, want := dumpStore(t, fol), dumpStore(t, pri.disk); got != want {
			t.Fatalf("%s: follower state differs from primary after catch-up", phase)
		}
		if st := fol.Status(); st.LagSeq != 0 {
			t.Fatalf("%s: lag_seq = %d after catch-up, want 0", phase, st.LagSeq)
		}
	}

	// Phase 1: clean tail — the no-fault baseline.
	writeN(t, 15)
	converge(t, "baseline")

	// Phase 2: connections die mid-record. Small per-connection byte
	// budgets guarantee cuts land inside frames; the follower must resume
	// from its watermark every time and never apply a torn record.
	proxy.budget.Store(int64(len(payloads[0]) / 3))
	for i := 0; i < 8; i++ {
		writeN(t, 2)
		proxy.dropAll()
	}
	proxy.budget.Store(0)
	converge(t, "mid-record drops")

	// Phase 3: follower SIGKILL while records are in flight, then a new
	// process over the same directory. The recovered watermark must resume
	// the stream with no duplicates and no gaps.
	writeN(t, 5)
	fol.Kill()
	writeN(t, 10)
	fol2, err := New(Options{
		Primary:    proxy.url(),
		Dir:        fdir,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("follower restart after kill: %v", err)
	}
	fol2.Start(Hooks{})
	t.Cleanup(func() { fol2.Close() })
	fol = fol2
	converge(t, "follower SIGKILL restart")

	// Phase 4: primary crash-restart. The follower rides out the outage
	// reconnecting, then tails the recovered incarnation.
	writeN(t, 4)
	pri.crash()
	pri2 := startPrimary(t, pdir, threshold)
	t.Cleanup(func() { pri2.crash() })
	proxy.setBackend(pri2.addr())
	proxy.dropAll()
	pri = pri2
	writeN(t, 6)
	converge(t, "primary crash-restart")

	// Phase 5: compaction races a lagging follower. With the proxy down,
	// the primary writes enough bytes to compact past the follower's
	// watermark; on reconnect the primary answers 410 Gone and the
	// follower must re-bootstrap from a fresh snapshot — and still end up
	// byte-identical.
	bootstrapsBefore := fol.Status().Bootstraps
	proxy.down.Store(true)
	proxy.dropAll()
	writeN(t, 12) // ≥ threshold bytes: at least one compaction runs
	proxy.down.Store(false)
	converge(t, "compaction vs lagging follower")
	if got := fol.Status().Bootstraps; got <= bootstrapsBefore {
		t.Errorf("compaction race: bootstraps = %d, want > %d (410 path never exercised)", got, bootstrapsBefore)
	}

	// Final differential: full read surface and verdicts through real
	// servers over both stores.
	writeN(t, 3)
	converge(t, "final")
	assertServingStateIdentical(t, pri.disk, fol, ids[next(len(ids))])

	if st := fol.Status(); st.Reconnects == 0 {
		t.Error("suite never exercised a reconnect — fault injection is broken")
	}
}

// assertServingStateIdentical builds fresh servers over the two stores
// and compares what clients actually see: the policy listing and a solver
// verdict on the same question.
func assertServingStateIdentical(t *testing.T, primary, follower store.PolicyStore, queryID string) {
	t.Helper()
	get := func(ts *httptest.Server, path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(ts *httptest.Server, path, body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	servers := make([]*httptest.Server, 0, 2)
	for _, st := range []store.PolicyStore{primary, follower} {
		// Background warming off: listing stats must reflect the stores
		// alone, not how far each server's warmer happened to get.
		srv, err := server.New(server.Options{
			Pipeline: newPipeline(t),
			Store:    st,
			Recovery: server.RecoveryOptions{WarmWorkers: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.CloseClientConnections(); ts.Close(); srv.Close() })
		servers = append(servers, ts)
	}
	pCode, pList := get(servers[0], "/v1/policies")
	fCode, fList := get(servers[1], "/v1/policies")
	if pCode != http.StatusOK || fCode != http.StatusOK {
		t.Fatalf("list codes: primary %d, follower %d", pCode, fCode)
	}
	if pList != fList {
		t.Errorf("policy listings differ:\nprimary:  %s\nfollower: %s", pList, fList)
	}
	question := `{"question":"Does Acme share my email address with advertising partners?"}`
	pCode, pVerdict := post(servers[0], "/v1/policies/"+queryID+"/query", question)
	fCode, fVerdict := post(servers[1], "/v1/policies/"+queryID+"/query", question)
	if pCode != fCode || pVerdict != fVerdict {
		t.Errorf("verdicts differ for %s:\nprimary  (%d): %s\nfollower (%d): %s",
			queryID, pCode, pVerdict, fCode, fVerdict)
	}
}
