package replica

// Serving-level follower test: a quagmired follower wired exactly like
// cmd/quagmired wires it (shared obs registry, server hooks) must serve
// the read surface, refuse writes with a primary pointer, and expose
// replication health and metrics.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/server"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

func TestFollowerServesReadSurface(t *testing.T) {
	payloads := encodedPayloads(t)
	pri := startPrimary(t, t.TempDir(), 0)
	t.Cleanup(func() { pri.crash() })
	mkv := func(i int) store.Version {
		return store.Version{
			VersionMeta: store.VersionMeta{Company: "Acme", Stats: store.VersionStats{Nodes: 3 + i}},
			Payload:     payloads[i%len(payloads)],
		}
	}
	var ids []string
	for i := 0; i < 3; i++ {
		p, err := pri.disk.Create("pol", mkv(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}

	// Wire the follower the way cmd/quagmired does: one pipeline shared
	// between the replica store (metrics) and the server, server created
	// over the follower facade, then Start with the server's hooks.
	pipeline := newPipeline(t)
	fol, err := New(Options{
		Primary:    pri.http.URL,
		Dir:        t.TempDir(),
		Store:      store.Options{Obs: pipeline.Obs()},
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	fsrv, err := server.New(server.Options{
		Pipeline: pipeline,
		Store:    fol,
		Replica:  &server.ReplicaOptions{Primary: pri.http.URL, Status: fol.StatusAny},
	})
	if err != nil {
		t.Fatal(err)
	}
	fol.Start(Hooks{OnApply: fsrv.ApplyReplicated, OnReload: fsrv.ReloadReplicated})
	fts := httptest.NewServer(fsrv.Handler())
	t.Cleanup(func() { fts.CloseClientConnections(); fts.Close(); fsrv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fol.WaitFor(ctx, pri.disk.Seq()); err != nil {
		t.Fatalf("follower never caught up: %v", err)
	}

	get := func(path string) (int, string) {
		resp, err := fts.Client().Get(fts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// The read surface serves replicated policies.
	if code, body := get("/v1/policies"); code != http.StatusOK || !strings.Contains(body, ids[0]) {
		t.Fatalf("follower listing: code %d body %s", code, body)
	}
	if code, _ := get("/v1/policies/" + ids[1]); code != http.StatusOK {
		t.Errorf("follower get policy: code %d", code)
	}
	resp, err := fts.Client().Post(fts.URL+"/v1/policies/"+ids[0]+"/query",
		"application/json", strings.NewReader(`{"question":"Does Acme sell my personal information?"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "verdict") {
		t.Errorf("follower query: code %d body %s", resp.StatusCode, body)
	}

	// Writes are refused with 403 and a pointer at the primary.
	for _, req := range []struct{ method, path string }{
		{http.MethodPost, "/v1/policies"},
		{http.MethodPut, "/v1/policies/" + ids[0]},
	} {
		hr, err := http.NewRequest(req.method, fts.URL+req.path, strings.NewReader(`{"name":"x","text":"y"}`))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := fts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s %s on follower: code %d, want 403", req.method, req.path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Quagmire-Primary"); got != pri.http.URL {
			t.Errorf("%s %s X-Quagmire-Primary = %q, want %q", req.method, req.path, got, pri.http.URL)
		}
	}

	// /healthz carries the replica section with zero lag.
	code, healthBody := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: code %d body %s", code, healthBody)
	}
	var health struct {
		Replica *Status `json:"replica"`
	}
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("healthz decode: %v (%s)", err, healthBody)
	}
	if health.Replica == nil {
		t.Fatalf("healthz has no replica section: %s", healthBody)
	}
	if health.Replica.Primary != pri.http.URL || health.Replica.LagSeq != 0 {
		t.Errorf("replica health = %+v, want primary %s with lag 0", health.Replica, pri.http.URL)
	}
	// A caught-up idle follower holds the WAL stream open — the primary
	// flushes headers before the first record, so connected turns true
	// shortly after the tail loop's request lands.
	deadline := time.Now().Add(5 * time.Second)
	for !fol.Status().Connected {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported connected; status %+v", fol.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The replication gauges surface on the follower's own /metrics.
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"quagmire_replica_lag_seq 0",
		"quagmire_replica_applied_seq 3",
		"quagmire_replica_records_applied_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
