// Package quagmire is the public API of the Privacy Quagmire reproduction:
// a pipeline that extracts structured data practices from natural-language
// privacy policies with an LLM, organizes them into dynamically induced
// hierarchies and an entity–data knowledge graph, and verifies
// natural-language compliance queries by compiling them to first-order
// logic and SMT-LIB — while preserving vague legal terms ("legitimate
// business purposes", "required by law") as explicit uninterpreted
// placeholders for human interpretation.
//
// Quickstart:
//
//	an, _ := quagmire.New(quagmire.Config{})
//	a, _ := an.Analyze(ctx, policyText)
//	res, _ := a.Ask(ctx, "Does Acme share my email address with advertisers?")
//	fmt.Println(res.Verdict, res.Placeholders)
package quagmire

import (
	"context"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// Verdict is the three-valued outcome of a compliance query.
type Verdict = query.Verdict

// Query verdicts.
const (
	// Valid: the queried practice necessarily follows from the policy.
	Valid = query.Valid
	// Invalid: the queried practice does not follow from the policy.
	Invalid = query.Invalid
	// Unknown: the solver ran out of budget or the formula lies outside
	// its complete fragment; human judgment or a larger budget is needed.
	Unknown = query.Unknown
)

// Stats are the extraction statistics of a policy analysis (the paper's
// Table 1 metrics).
type Stats = kg.Stats

// QueryResult is the full output of one query: verdict, vocabulary
// translations, matched edges, the generated FOL formula and SMT-LIB
// script, and the uninterpreted ambiguity placeholders the verdict may
// hinge on.
type QueryResult = query.Result

// Diff describes a policy-version change at statement granularity.
type Diff = segment.Diff

// UpdateStats reports what an incremental re-analysis touched.
type UpdateStats = kg.UpdateStats

// SolverLimits bounds the SMT solver deterministically.
type SolverLimits = smt.Limits

// BatchResult is the outcome of one query in a batch verification.
type BatchResult = query.BatchItem

// SMTCacheStats reports the shared SMT result cache's hit/miss counters.
type SMTCacheStats = smt.CacheStats

// Config configures an Analyzer. The zero value selects the deterministic
// simulated LLM with caching, the default embedding model, and default
// solver limits.
type Config struct {
	// Model is the language model backing extraction and equivalence
	// checks. Nil selects the built-in deterministic simulated model.
	Model llm.Client
	// TaxonomyFilterThreshold, when positive, enables the
	// similarity-based taxonomy edge filter at that threshold.
	TaxonomyFilterThreshold float64
	// SolverLimits bounds Phase 3 verification.
	SolverLimits SolverLimits
	// Workers bounds Phase 1 segment-extraction fan-out and Phase 3 batch
	// verification; 0 selects runtime.GOMAXPROCS(0), 1 forces sequential
	// processing.
	Workers int
	// SharedSolverCore routes Phase 3 verification through one long-lived
	// incremental SMT core per analysis: the policy's ground encoding is
	// hash-consed and clausified once, and every query in a batch re-solves
	// it under a selector assumption, retaining learned clauses. Verdicts
	// follow whole-policy semantics (every edge is always encoded).
	SharedSolverCore bool
}

// Analyzer runs the three-phase pipeline.
type Analyzer struct {
	p *core.Pipeline
}

// New constructs an Analyzer.
func New(cfg Config) (*Analyzer, error) {
	p, err := core.New(core.Options{
		Client:                  cfg.Model,
		TaxonomyFilterThreshold: cfg.TaxonomyFilterThreshold,
		Limits:                  cfg.SolverLimits,
		Workers:                 cfg.Workers,
		SharedSolverCore:        cfg.SharedSolverCore,
	})
	if err != nil {
		return nil, err
	}
	return &Analyzer{p: p}, nil
}

// SMTCacheStats reports the analyzer's shared SMT result cache counters —
// hits are queries whose (sub)problems were answered without running the
// solver.
func (a *Analyzer) SMTCacheStats() SMTCacheStats { return a.p.SMTCacheStats() }

// Metrics is a point-in-time snapshot of every pipeline metric: counters,
// gauges and latency histograms for all three phases plus the SMT layer.
// Its Table method renders the per-phase breakdown the CLI's -stats flag
// prints.
type Metrics = obs.Snapshot

// Metrics snapshots the analyzer's observability registry. Every Analyze,
// Update, Ask and AskBatch call contributes; the snapshot is safe to take
// while work is in flight.
func (a *Analyzer) Metrics() Metrics { return a.p.Metrics() }

// SimulatedModel returns the deterministic built-in language model,
// wrapped with response caching. Use it as Config.Model when composing
// with middleware from this module's internals is not needed.
func SimulatedModel() llm.Client { return llm.NewCachingClient(llm.NewSim()) }

// EmbeddingModel returns the deterministic embedding model used for
// vocabulary translation.
func EmbeddingModel() *embed.Model { return embed.NewModel("text-embedding-sim") }

// Analysis is an analyzed policy: extraction, knowledge graph and query
// engine.
type Analysis struct {
	inner *core.Analysis
}

// Analyze runs Phases 1–2 over a policy text.
func (a *Analyzer) Analyze(ctx context.Context, policy string) (*Analysis, error) {
	inner, err := a.p.Analyze(ctx, policy)
	if err != nil {
		return nil, err
	}
	return &Analysis{inner: inner}, nil
}

// Update applies a new policy version incrementally: only changed
// statements are re-extracted and only affected graph branches rebuilt.
func (a *Analyzer) Update(ctx context.Context, prev *Analysis, newPolicy string) (*Analysis, Diff, UpdateStats, error) {
	inner, diff, st, err := a.p.Update(ctx, prev.inner, newPolicy)
	if err != nil {
		return nil, diff, st, err
	}
	return &Analysis{inner: inner}, diff, st, nil
}

// Company returns the extracted organization name.
func (an *Analysis) Company() string { return an.inner.Extraction.Company }

// Stats returns the Table 1 extraction statistics.
func (an *Analysis) Stats() Stats { return an.inner.Stats() }

// Edges returns every extracted data-practice edge in the paper's
// "[actor]-action->[object]" rendering.
func (an *Analysis) Edges() []string {
	edges := an.inner.KG.ED.Edges()
	out := make([]string, len(edges))
	for i, e := range edges {
		out[i] = e.String()
	}
	return out
}

// Ask verifies a natural-language compliance query against the policy.
func (an *Analysis) Ask(ctx context.Context, question string) (*QueryResult, error) {
	return an.inner.Engine.Ask(ctx, question)
}

// AskBatch verifies many compliance queries concurrently over the
// analyzer's worker pool, sharing the SMT result cache so overlapping
// queries solve once. Results are returned in input order; per-query
// failures ride on the corresponding item.
func (an *Analysis) AskBatch(ctx context.Context, questions []string) ([]BatchResult, error) {
	return an.inner.Engine.AskBatch(ctx, questions)
}

// Practices returns the number of extracted data practices.
func (an *Analysis) Practices() int { return len(an.inner.Extraction.Practices) }

// VagueConditions returns the distinct vague condition fragments found in
// the policy — the terms a human must interpret.
func (an *Analysis) VagueConditions() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range an.inner.Extraction.Practices {
		for _, v := range p.VagueTerms {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Exploration enumerates vague-condition interpretations for one query.
type Exploration = query.Exploration

// Explore answers the query under every interpretation of its vague
// placeholder conditions using incremental solving (check-sat-assuming) —
// the explicit "which readings make this permissible" view.
func (an *Analysis) Explore(ctx context.Context, question string) (*Exploration, error) {
	return an.inner.Engine.Explore(ctx, question)
}
