package quagmire

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	an, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := an.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	if a.Company() != "Acme" {
		t.Errorf("company = %q", a.Company())
	}
	st := a.Stats()
	if st.Edges == 0 {
		t.Fatal("no edges")
	}
	if a.Practices() == 0 {
		t.Error("no practices")
	}
	if len(a.Edges()) != st.Edges {
		t.Errorf("Edges() length %d != stats %d", len(a.Edges()), st.Edges)
	}
	// Edge rendering uses the paper's notation.
	if !strings.Contains(a.Edges()[0], "]-") || !strings.Contains(a.Edges()[0], "->[") {
		t.Errorf("edge rendering = %q", a.Edges()[0])
	}
	res, err := a.Ask(context.Background(), "Does Acme share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid {
		t.Errorf("verdict = %s", res.Verdict)
	}
	vague := a.VagueConditions()
	if len(vague) == 0 {
		t.Error("no vague conditions surfaced")
	}
}

func TestPublicAPIUpdate(t *testing.T) {
	an, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := an.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(corpus.Mini(), "We collect device identifiers automatically.",
		"We collect device identifiers and voiceprints automatically.", 1)
	a2, diff, st, err := an.Update(context.Background(), a1, edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 || st.EdgesAdded == 0 {
		t.Errorf("diff=%+v stats=%+v", diff, st)
	}
	if a2.Stats().Edges <= 0 {
		t.Error("updated analysis empty")
	}
}

func TestPublicAPIWithExplicitModel(t *testing.T) {
	an, err := New(Config{Model: SimulatedModel(), TaxonomyFilterThreshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	a, err := an.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().Edges == 0 {
		t.Error("no edges with explicit model")
	}
	if EmbeddingModel() == nil {
		t.Error("nil embedding model")
	}
}

func TestPublicAPIExplore(t *testing.T) {
	an, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := an.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := a.Explore(context.Background(), "Does Acme share my usage data with service providers?")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Scenarios) < 2 || exp.AlwaysValid || exp.NeverValid {
		t.Errorf("exploration = %+v", exp)
	}
}
