// Policy diff: the policy-author scenario from §5 — track changes between
// policy versions with content-hashed segments, re-extract only the
// modified statements, and update only the affected graph branches.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/privacy-quagmire/quagmire"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func main() {
	ctx := context.Background()

	an, err := quagmire.New(quagmire.Config{})
	if err != nil {
		log.Fatal(err)
	}

	v1 := corpus.Mini()
	a1, err := an.Analyze(ctx, v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1: %d edges\n", a1.Stats().Edges)

	// A new regulation forces two changes: biometric collection is
	// disclosed, and the sale denial is strengthened.
	v2 := strings.Replace(v1,
		"We collect device identifiers automatically.",
		"We collect device identifiers and voiceprints automatically.", 1)
	v2 = strings.Replace(v2,
		"We do not sell your personal information.",
		"We do not sell your personal information. We do not disclose your voiceprints.", 1)

	a2, diff, st, err := an.Update(ctx, a1, v2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("v2: %d edges\n\n", a2.Stats().Edges)
	fmt.Printf("segment diff: %d kept, %d added, %d removed (%.1f%% changed)\n",
		len(diff.Kept), len(diff.Added), len(diff.Removed), 100*diff.ChangedFraction())
	for _, s := range diff.Added {
		fmt.Printf("  + %s\n", s.Text)
	}
	for _, s := range diff.Removed {
		fmt.Printf("  - %s\n", s.Text)
	}
	fmt.Printf("\ngraph update: %d edges removed, %d added, %d new hierarchy terms\n",
		st.EdgesRemoved, st.EdgesAdded, st.NewTerms)

	// The updated graph answers questions about the new disclosures.
	res, err := a2.Ask(ctx, "Does Acme collect my voiceprints?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: Does Acme collect my voiceprints?  verdict: %s\n", res.Verdict)
}
