// Condition explorer: the lawyer/engineer collaboration scenario — for a
// query whose verdict hinges on vague legal terms, enumerate every
// interpretation of the placeholders with check-sat-assuming (the paper's
// proposed incremental-solving future work) and show exactly which
// readings of "legitimate business purposes" etc. make the practice
// permissible.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func main() {
	ctx := context.Background()
	p, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	a, err := p.Analyze(ctx, corpus.Mini())
	if err != nil {
		log.Fatal(err)
	}

	q := llm.ParamSet{
		Sender: "Acme", Action: "share", DataType: "usage data",
		Receiver: "service provider",
	}
	fmt.Println("query: does Acme share usage data with service providers?")

	// The plain verdict hides the interpretation dependence…
	res, err := a.Engine.AskParams(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot verdict: %s (conditional on %v)\n\n", res.Verdict, res.ConditionalOn)

	// …the exploration makes it explicit, scenario by scenario.
	exp, err := a.Engine.ExploreConditions(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d interpretations of %d vague condition(s):\n\n",
		len(exp.Scenarios), len(exp.Placeholders))
	for _, sc := range exp.Scenarios {
		var parts []string
		for _, ph := range exp.Placeholders {
			parts = append(parts, fmt.Sprintf("%s=%v", strings.TrimPrefix(ph, "cond_"), sc.Assumptions[ph]))
		}
		sort.Strings(parts)
		fmt.Printf("  %-8s when %s\n", sc.Verdict, strings.Join(parts, ", "))
	}
	fmt.Printf("\nalways valid: %v   never valid: %v\n", exp.AlwaysValid, exp.NeverValid)
	fmt.Println("\nThis is the paper's point: the formal answer is only as settled as")
	fmt.Println("the human interpretation of the vague terms it depends on.")
}
