// Policy audit: the legal-team scenario from §5 — run full extraction over
// the large TikTak policy, report the Table 1 statistics, surface the vague
// conditions that need human interpretation, and run the PolicyLint-style
// contradiction pass classifying apparent conflicts into coherent exception
// patterns vs genuine conflicts.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/privacy-quagmire/quagmire/internal/baseline"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/taxonomy"
)

func main() {
	ctx := context.Background()
	client := llm.NewCachingClient(llm.NewSim())

	// Phase 1 over the ~15k-word policy.
	ext := extract.New(client)
	ex, err := ext.ExtractPolicy(ctx, corpus.TikTak())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("company: %s — %d segments, %d practices (%d extraction errors)\n",
		ex.Company, len(ex.Segments), len(ex.Practices), ext.Stats.Errors)

	// Phase 2.
	builder := kg.NewBuilder(&taxonomy.Builder{Client: client})
	k, err := builder.Build(ctx, ex)
	if err != nil {
		log.Fatal(err)
	}
	st := k.Stats()
	fmt.Printf("knowledge graph: %d nodes, %d edges, %d entities, %d data types\n\n",
		st.Nodes, st.Edges, st.Entities, st.DataTypes)

	// Vague terms the lawyers must interpret (Challenge 1).
	vague := map[string]int{}
	for _, p := range ex.Practices {
		for _, v := range p.VagueTerms {
			vague[v]++
		}
	}
	fmt.Println("vague conditions (occurrences):")
	for v, n := range vague {
		fmt.Printf("  %-40s %d\n", v, n)
	}

	// PolicyLint-style contradiction pass (Challenge 3).
	rep := baseline.Lint(ex.Practices)
	fmt.Printf("\napparent contradictions: %d (exceptions: %d, genuine: %d)\n",
		len(rep.Apparent), rep.Exceptions, rep.Genuine)
	for i, c := range rep.Apparent {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rep.Apparent)-5)
			break
		}
		kind := "GENUINE CONFLICT"
		if c.ExceptionPattern {
			kind = "coherent exception"
		}
		fmt.Printf("  [%s] allow(%s %s | cond %q) vs deny(%s %s | cond %q)\n",
			kind, c.Allow.Action, c.Allow.DataType, c.Allow.Condition,
			c.Deny.Action, c.Deny.DataType, c.Deny.Condition)
	}

	// Hierarchy spot check: what does the data taxonomy say about email?
	fmt.Println("\ndata hierarchy path for \"email address\":")
	path := append([]string{"email address"}, k.DataH.Ancestors("email address")...)
	for i, t := range path {
		fmt.Printf("  %*s%s\n", 2*i, "", t)
	}
}
