// Compliance check: the engineer scenario from §5 — run a battery of
// compliance queries against a policy, show the three-valued verdicts,
// the vocabulary translations the embedding search performed, and the
// generated SMT-LIB artifact for one query.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/privacy-quagmire/quagmire"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func main() {
	ctx := context.Background()

	an, err := quagmire.New(quagmire.Config{})
	if err != nil {
		log.Fatal(err)
	}
	a, err := an.Analyze(ctx, corpus.Mini())
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"Does Acme share my e-mail addresses with advertising partners?",
		"Does Acme share my usage data with service providers?",
		"Does Acme sell my personal information?",
		"Does Acme share my medical records with insurance companies?",
		"Does Acme collect my device identifiers?",
	}

	for _, q := range queries {
		res, err := a.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %s\n", res.Verdict, q)
		for from, to := range res.Translations {
			if from != to {
				fmt.Printf("         translated %q -> %q\n", from, to)
			}
		}
		if len(res.ConditionalOn) > 0 {
			fmt.Printf("         valid only if: %s\n", strings.Join(res.ConditionalOn, ", "))
		}
	}

	// Dump the SMT-LIB artifact for the first query: the exact formal
	// object handed to the solver, with ambiguity placeholders visible.
	res, err := a.Ask(ctx, queries[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated SMT-LIB for query 2:")
	fmt.Println(res.Script)
}
