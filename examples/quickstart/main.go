// Quickstart: analyze a small privacy policy, print its extraction
// statistics and data-practice edges, and verify one compliance query.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/privacy-quagmire/quagmire"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func main() {
	ctx := context.Background()

	an, err := quagmire.New(quagmire.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 + 2: extract data practices and build the knowledge graph.
	a, err := an.Analyze(ctx, corpus.Mini())
	if err != nil {
		log.Fatal(err)
	}

	st := a.Stats()
	fmt.Printf("policy:      %s\n", a.Company())
	fmt.Printf("nodes=%d edges=%d entities=%d data types=%d\n\n",
		st.Nodes, st.Edges, st.Entities, st.DataTypes)

	fmt.Println("extracted data-practice edges:")
	for _, e := range a.Edges() {
		fmt.Println(" ", e)
	}

	fmt.Println("\nvague conditions preserved for human review:")
	for _, v := range a.VagueConditions() {
		fmt.Println(" ", v)
	}

	// Phase 3: verify a compliance query via FOL + SMT.
	q := "Does Acme share my email address with advertising partners?"
	res, err := a.Ask(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery:   %s\nverdict: %s\n", q, res.Verdict)
	if len(res.Placeholders) > 0 {
		fmt.Printf("depends on uninterpreted terms: %s\n", strings.Join(res.Placeholders, ", "))
	}
}
