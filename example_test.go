package quagmire_test

import (
	"context"
	"fmt"

	"github.com/privacy-quagmire/quagmire"
)

const examplePolicy = `# Acme Privacy Policy

This Privacy Policy describes how Acme ("we", "us", or "our") handles your information.

## Collection

We collect your email address.

## Sharing

We share usage data with service providers for legitimate business purposes.

We do not sell your personal information.
`

// ExampleAnalyzer_Analyze shows the core workflow: analyze a policy, read
// its statistics and edges.
func ExampleAnalyzer_Analyze() {
	an, _ := quagmire.New(quagmire.Config{})
	a, _ := an.Analyze(context.Background(), examplePolicy)
	st := a.Stats()
	fmt.Println(a.Company(), "edges:", st.Edges)
	fmt.Println(a.Edges()[0])
	// Output:
	// Acme edges: 3
	// [Acme]-collect->[email address]
}

// ExampleAnalysis_Ask shows three-valued query verification with vague
// conditions surfaced as placeholders.
func ExampleAnalysis_Ask() {
	an, _ := quagmire.New(quagmire.Config{})
	a, _ := an.Analyze(context.Background(), examplePolicy)

	res, _ := a.Ask(context.Background(), "Does Acme sell my personal information?")
	fmt.Println("sell:", res.Verdict)

	res, _ = a.Ask(context.Background(), "Does Acme share my usage data with service providers?")
	fmt.Println("share:", res.Verdict, res.ConditionalOn)
	// Output:
	// sell: INVALID
	// share: VALID [cond_legitimate_business_purposes]
}

// ExampleAnalysis_VagueConditions shows the ambiguity the pipeline
// preserves for human review.
func ExampleAnalysis_VagueConditions() {
	an, _ := quagmire.New(quagmire.Config{})
	a, _ := an.Analyze(context.Background(), examplePolicy)
	for _, v := range a.VagueConditions() {
		fmt.Println(v)
	}
	// Output:
	// legitimate business purpose
	// business purpose
}
